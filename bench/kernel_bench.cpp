// Kernel-layer microbenchmark: blocked GEMM / conv kernels vs the retained
// reference implementations, validated against the paper's cache model.
//
// Four sections. The first three go to BENCH_kernels.json, the fourth to
// BENCH_codegen.json:
//
//  1. GEMM sweep over shapes drawn from the paper's models (word-LM
//     projection, NMT attention/recurrent, ResNet im2col shapes) plus the
//     canonical 1024^3 square: GFLOP/s, speedup vs `reference_gemm`, and a
//     bitwise-equality check between the two.
//  2. Conv forward/grad lowerings vs the reference direct loops.
//  3. Traffic-model cross-check: with a deliberately small fixed tiling,
//     measured packed bytes per compulsory byte must grow once the matrices
//     outgrow one macro-tile, tracking the `hw::tiled_matmul_bytes` trend
//     (the paper's §4 tiled-GEMM traffic shape). Mismatched direction is a
//     hard failure (nonzero exit), as is any bitwise mismatch.
//  4. Codegen: fused-pointwise chains drawn from the paper's cells (LSTM
//     cell epilogue, RHN carry gate, residual+bias ReLU, gate backprop)
//     run compiled-vs-interpreter per supported ISA, plus the blocked GEMM
//     with the scalar 4x8 micro-kernel vs the register-tile-rule compiled
//     one. Exact-ops chains must match the interpreter bitwise; sigmoid/
//     tanh chains within epsilon. Outside --smoke, at least one chain must
//     clear a 2x compiled speedup or the run fails.
//
// Flags: --smoke (tiny shapes, 1 rep — CI), --threads N, --out PATH,
// --codegen-out PATH.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/concurrency/thread_pool.h"
#include "src/hw/cache_model.h"
#include "src/hw/cpu_features.h"
#include "src/runtime/codegen/dispatch.h"
#include "src/runtime/gemm.h"
#include "src/runtime/kernels.h"
#include "src/util/format.h"
#include "src/util/table.h"

namespace {

using namespace gf;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<float> random_vec(std::size_t n, std::uint32_t seed) {
  std::vector<float> v(n);
  std::uint32_t s = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    v[i] = static_cast<float>(s % 20011u) / 10005.5f - 1.0f;
  }
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

struct GemmShape {
  const char* label;
  std::int64_t m, n, k;
};

struct GemmResult {
  std::string label;
  std::int64_t m, n, k;
  double blocked_gflops = 0;
  double reference_gflops = 0;
  double speedup = 0;
  double measured_traffic_bytes = 0;
  double model_traffic_bytes = 0;
  bool bitwise_match = false;
  bool deterministic = false;
};

/// Best-of-reps wall time of fn() in seconds.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

GemmResult bench_gemm_shape(const GemmShape& shape, conc::ThreadPool& pool, int reps) {
  const auto a_elems = static_cast<std::size_t>(shape.m * shape.k);
  const auto b_elems = static_cast<std::size_t>(shape.k * shape.n);
  const auto c_elems = static_cast<std::size_t>(shape.m * shape.n);
  const std::vector<float> a = random_vec(a_elems, 17);
  const std::vector<float> b = random_vec(b_elems, 19);
  std::vector<float> c_blocked(c_elems), c_ref(c_elems);
  const double flops = 2.0 * static_cast<double>(shape.m) * shape.n * shape.k;
  const rt::GemmTiling& tiling = rt::default_gemm_tiling();

  GemmResult res;
  res.label = shape.label;
  res.m = shape.m;
  res.n = shape.n;
  res.k = shape.k;

  rt::GemmTraffic traffic;
  const double t_blocked = time_best(reps, [&] {
    rt::blocked_gemm(a.data(), b.data(), c_blocked.data(), 1, shape.m, shape.n,
                     shape.k, false, false, 0, 0, 0, tiling, pool);
  });
  // One extra counted run for the traffic numbers (counting is off during
  // the timed reps to keep the atomics out of the measured loop).
  rt::blocked_gemm(a.data(), b.data(), c_blocked.data(), 1, shape.m, shape.n,
                   shape.k, false, false, 0, 0, 0, tiling, pool, &traffic);
  const double t_ref = time_best(reps, [&] {
    rt::reference_gemm(a.data(), b.data(), c_ref.data(), 1, shape.m, shape.n,
                       shape.k, false, false, 0, 0, 0, pool);
  });

  res.blocked_gflops = flops / t_blocked / 1e9;
  res.reference_gflops = flops / t_ref / 1e9;
  res.speedup = t_ref / t_blocked;
  res.measured_traffic_bytes = traffic.total();
  res.model_traffic_bytes =
      hw::tiled_matmul_bytes(static_cast<double>(shape.m), static_cast<double>(shape.n),
                             static_cast<double>(shape.k), 1.0, sizeof(float),
                             rt::gemm_model_cache_bytes());
  res.bitwise_match = bitwise_equal(c_blocked, c_ref);

  // Thread-count determinism: 1, 2, and 8 workers must agree bitwise.
  res.deterministic = true;
  for (int threads : {1, 2, 8}) {
    conc::ThreadPool tp(static_cast<std::size_t>(threads));
    std::vector<float> c(c_elems);
    rt::blocked_gemm(a.data(), b.data(), c.data(), 1, shape.m, shape.n, shape.k,
                     false, false, 0, 0, 0, tiling, tp);
    res.deterministic = res.deterministic && bitwise_equal(c, c_blocked);
  }
  return res;
}

struct ConvResult {
  std::string label;
  double blocked_gflops = 0;
  double reference_gflops = 0;
  double speedup = 0;
  bool forward_bitwise = false;
};

ConvResult bench_conv(std::int64_t n, std::int64_t hw_dim, std::int64_t c,
                      std::int64_t f, conc::ThreadPool& pool, int reps,
                      const char* label) {
  rt::DenseTensor in({n, hw_dim, hw_dim, c}, ir::DataType::kFloat32);
  rt::DenseTensor filt({3, 3, c, f}, ir::DataType::kFloat32);
  rt::DenseTensor out({n, hw_dim, hw_dim, f}, ir::DataType::kFloat32);
  rt::DenseTensor out_ref({n, hw_dim, hw_dim, f}, ir::DataType::kFloat32);
  const std::vector<float> xv = random_vec(static_cast<std::size_t>(in.numel()), 29);
  const std::vector<float> wv = random_vec(static_cast<std::size_t>(filt.numel()), 31);
  std::memcpy(in.fdata(), xv.data(), xv.size() * sizeof(float));
  std::memcpy(filt.fdata(), wv.data(), wv.size() * sizeof(float));

  rt::KernelStats stats;
  const double t_blocked = time_best(
      reps, [&] { rt::conv2d(in, filt, out, 1, pool, stats); });
  const double t_ref =
      time_best(reps, [&] { rt::conv2d_reference(in, filt, out_ref, 1, stats); });
  const double flops = 2.0 * static_cast<double>(out.numel()) * 9 * c;

  ConvResult res;
  res.label = label;
  res.blocked_gflops = flops / t_blocked / 1e9;
  res.reference_gflops = flops / t_ref / 1e9;
  res.speedup = t_ref / t_blocked;
  res.forward_bitwise =
      std::memcmp(out.fdata(), out_ref.fdata(),
                  static_cast<std::size_t>(out.numel()) * sizeof(float)) == 0;
  return res;
}

struct TrafficPoint {
  std::int64_t edge = 0;
  double measured_ratio = 0;  // packed bytes / compulsory bytes
  double model_ratio = 0;     // model bytes / compulsory bytes
};

/// Fixed-small-tiling sweep: both ratios must rise as the matrices outgrow
/// the modeled tile, which is the §4 claim this binary exists to validate.
std::vector<TrafficPoint> traffic_sweep(conc::ThreadPool& pool,
                                        const std::vector<std::int64_t>& edges) {
  const double cache = 8.0 * 1024.0;
  const rt::GemmTiling tiling = rt::select_gemm_tiling(cache, sizeof(float));
  std::vector<TrafficPoint> pts;
  for (std::int64_t edge : edges) {
    const auto elems = static_cast<std::size_t>(edge * edge);
    const std::vector<float> a = random_vec(elems, 37);
    const std::vector<float> b = random_vec(elems, 41);
    std::vector<float> c(elems);
    rt::GemmTraffic t;
    rt::blocked_gemm(a.data(), b.data(), c.data(), 1, edge, edge, edge, false,
                     false, 0, 0, 0, tiling, pool, &t);
    const double compulsory = 3.0 * static_cast<double>(elems) * sizeof(float);
    TrafficPoint p;
    p.edge = edge;
    p.measured_ratio = t.total() / compulsory;
    p.model_ratio = hw::tiled_matmul_bytes(static_cast<double>(edge),
                                           static_cast<double>(edge),
                                           static_cast<double>(edge), 1.0,
                                           sizeof(float), cache) /
                    compulsory;
    pts.push_back(p);
  }
  return pts;
}

// ---------------------------------------------------------------------------
// Section 4: codegen — compiled fused pointwise and the GEMM micro-kernel.
// ---------------------------------------------------------------------------

/// A fused per-element program with paper-derived shape: the chains the
/// graph-level fusion pass actually forms on the six models.
struct ChainSpec {
  const char* label;
  std::vector<std::int64_t> input_elems;  // element count per input
  std::vector<ir::FusedInstr> program;
  /// True when every instruction is an exact-IEEE op (no kSigmoid/kTanh):
  /// the compiled path must then match the interpreter bitwise.
  bool exact = false;
};

/// The LSTM cell epilogue: h = sigmoid(o) * tanh(sigmoid(i)*tanh(g) +
/// sigmoid(f)*c_prev). Inputs: i, f, g, o preactivations and c_prev.
ChainSpec lstm_cell_chain(std::int64_t n) {
  using F = ir::PointwiseFn;
  ChainSpec c;
  c.label = "lstm_cell";
  c.input_elems = {n, n, n, n, n};
  c.program = {{F::kSigmoid, {0}},   // 5: sigmoid(i)
               {F::kSigmoid, {1}},   // 6: sigmoid(f)
               {F::kTanh, {2}},      // 7: tanh(g)
               {F::kMul, {5, 7}},    // 8: input gate * candidate
               {F::kMul, {6, 4}},    // 9: forget gate * c_prev
               {F::kAdd, {8, 9}},    // 10: c
               {F::kSigmoid, {3}},   // 11: sigmoid(o)
               {F::kTanh, {10}},     // 12: tanh(c)
               {F::kMul, {11, 12}}}; // 13: h
  return c;
}

/// The RHN carry gate: y = tanh(h)*s + x*(1-s), s = sigmoid(t). Inputs:
/// h, t, x.
ChainSpec rhn_carry_chain(std::int64_t n) {
  using F = ir::PointwiseFn;
  ChainSpec c;
  c.label = "rhn_carry";
  c.input_elems = {n, n, n};
  c.program = {{F::kSigmoid, {1}},  // 3: s
               {F::kTanh, {0}},     // 4: tanh(h)
               {F::kMul, {4, 3}},   // 5: tanh(h)*s
               {F::kOneMinus, {3}}, // 6: 1-s
               {F::kMul, {2, 6}},   // 7: x*(1-s)
               {F::kAdd, {5, 7}}};  // 8: y
  return c;
}

/// ResNet-style residual add with a broadcast rank-1 bias and ReLU:
/// y = relu(x + r + bias). The bias input exercises the periodic load
/// classification. Exact ops only — bitwise-checked.
ChainSpec residual_bias_relu_chain(std::int64_t n, std::int64_t hidden) {
  using F = ir::PointwiseFn;
  ChainSpec c;
  c.label = "residual_bias_relu";
  c.input_elems = {n, n, hidden};
  c.program = {{F::kAddN, {0, 1, 2}}, {F::kRelu, {3}}};
  c.exact = true;
  return c;
}

/// Gate backprop: dz = (1/b) * sigmoid_grad(y, dy). Exact ops only.
ChainSpec gate_backprop_chain(std::int64_t n) {
  using F = ir::PointwiseFn;
  ChainSpec c;
  c.label = "gate_backprop";
  c.input_elems = {n, n};
  c.program = {{F::kSigmoidGrad, {0, 1}},
               {F::kScale, {2}, sym::Expr(1.0 / 128.0)}};
  c.exact = true;
  return c;
}

struct ChainIsaResult {
  std::string isa;
  double gbytes_per_s = 0;
  double speedup = 0;  // vs the interpreter
};

struct ChainResult {
  std::string label;
  std::int64_t elems = 0;
  std::size_t instrs = 0;
  bool exact = false;
  double interp_gbytes_per_s = 0;
  std::vector<ChainIsaResult> per_isa;
  double best_speedup = 0;
  double max_rel_err = 0;   // compiled (best ISA) vs interpreter
  bool bitwise_ok = true;   // exact chains only; true otherwise
  bool parity_ok = false;
};

/// Max |a-b| / max(|b|, 1) over the tensors.
double max_rel_err(const rt::DenseTensor& a, const rt::DenseTensor& b) {
  double worst = 0;
  const float* pa = a.fdata();
  const float* pb = b.fdata();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double denom = std::max(std::abs(static_cast<double>(pb[i])), 1.0);
    worst = std::max(worst, std::abs(static_cast<double>(pa[i]) - pb[i]) / denom);
  }
  return worst;
}

/// Relative-error bound for chains through the polynomial kSigmoid/kTanh:
/// the Cephes exp is ~2 ulp, and the chains compose at most two of them.
constexpr double kChainRelTol = 1e-5;

ChainResult bench_chain(const ChainSpec& spec, conc::ThreadPool& pool, int reps) {
  const std::int64_t n =
      *std::max_element(spec.input_elems.begin(), spec.input_elems.end());
  std::vector<rt::DenseTensor> storage;
  storage.reserve(spec.input_elems.size());
  std::vector<const rt::DenseTensor*> inputs;
  for (std::size_t i = 0; i < spec.input_elems.size(); ++i) {
    storage.emplace_back(std::vector<std::int64_t>{spec.input_elems[i]},
                         ir::DataType::kFloat32);
    const std::vector<float> v =
        random_vec(static_cast<std::size_t>(spec.input_elems[i]),
                   static_cast<std::uint32_t>(53 + 7 * i));
    std::memcpy(storage.back().fdata(), v.data(), v.size() * sizeof(float));
  }
  for (const rt::DenseTensor& t : storage) inputs.push_back(&t);
  rt::DenseTensor out_interp({n}, ir::DataType::kFloat32);
  rt::DenseTensor out_simd({n}, ir::DataType::kFloat32);

  std::vector<double> alphas;
  for (const ir::FusedInstr& ins : spec.program)
    alphas.push_back(ins.alpha.eval(sym::Bindings{}));

  double moved_bytes = static_cast<double>(n) * sizeof(float);
  for (std::int64_t e : spec.input_elems)
    moved_bytes += static_cast<double>(e) * sizeof(float);

  ChainResult res;
  res.label = spec.label;
  res.elems = n;
  res.instrs = spec.program.size();
  res.exact = spec.exact;

  rt::KernelStats stats;
  const double t_interp = time_best(reps, [&] {
    rt::fused_pointwise(spec.program, inputs, alphas, out_interp, pool, stats);
  });
  res.interp_gbytes_per_s = moved_bytes / t_interp / 1e9;

  const hw::SimdIsa best = hw::best_simd_isa();
  for (const hw::SimdIsa isa :
       {hw::SimdIsa::kGeneric, hw::SimdIsa::kAvx2, hw::SimdIsa::kAvx512,
        hw::SimdIsa::kNeon}) {
    if (!hw::isa_supported(isa)) continue;
    const double t = time_best(reps, [&] {
      if (!rt::fused_pointwise_simd(spec.program, inputs, alphas, out_simd, pool,
                                    stats, isa))
        throw std::runtime_error("compiled path refused a benchmark chain");
    });
    ChainIsaResult r;
    r.isa = hw::simd_isa_name(isa);
    r.gbytes_per_s = moved_bytes / t / 1e9;
    r.speedup = t_interp / t;
    if (isa == best) {
      res.best_speedup = r.speedup;
      res.max_rel_err = max_rel_err(out_simd, out_interp);
      if (spec.exact)
        res.bitwise_ok =
            std::memcmp(out_simd.fdata(), out_interp.fdata(),
                        static_cast<std::size_t>(n) * sizeof(float)) == 0;
    }
    res.per_isa.push_back(r);
  }
  res.parity_ok = res.max_rel_err <= kChainRelTol && res.bitwise_ok;
  return res;
}

struct UkrResult {
  std::string label;
  double scalar_gflops = 0;
  double simd_gflops = 0;
  double speedup = 0;
  bool bitwise_match = false;
  std::string scalar_tile;
  std::string simd_tile;
};

/// Blocked GEMM with the seed 4x8 scalar micro-kernel vs the register-tile
/// rule's compiled one — the same packing and cache tiling either way, so
/// the delta is the micro-kernel. The two must agree bitwise (the vector
/// kernel replicates the scalar float-multiply/double-add order).
UkrResult bench_gemm_ukr(const GemmShape& shape, conc::ThreadPool& pool, int reps) {
  const std::vector<float> a =
      random_vec(static_cast<std::size_t>(shape.m * shape.k), 61);
  const std::vector<float> b =
      random_vec(static_cast<std::size_t>(shape.k * shape.n), 67);
  std::vector<float> c_scalar(static_cast<std::size_t>(shape.m * shape.n));
  std::vector<float> c_simd(c_scalar.size());
  const double flops = 2.0 * static_cast<double>(shape.m) * shape.n * shape.k;

  UkrResult res;
  res.label = shape.label;

  rt::codegen::set_forced_isa(hw::SimdIsa::kScalar);
  {
    const rt::GemmTiling tiling = rt::default_gemm_tiling();
    res.scalar_tile = std::to_string(tiling.mr) + "x" + std::to_string(tiling.nr);
    const double t = time_best(reps, [&] {
      rt::blocked_gemm(a.data(), b.data(), c_scalar.data(), 1, shape.m, shape.n,
                       shape.k, false, false, 0, 0, 0, tiling, pool);
    });
    res.scalar_gflops = flops / t / 1e9;
  }
  rt::codegen::set_forced_isa(hw::best_simd_isa());
  {
    const rt::GemmTiling tiling = rt::default_gemm_tiling();
    res.simd_tile = std::to_string(tiling.mr) + "x" + std::to_string(tiling.nr);
    const double t = time_best(reps, [&] {
      rt::blocked_gemm(a.data(), b.data(), c_simd.data(), 1, shape.m, shape.n,
                       shape.k, false, false, 0, 0, 0, tiling, pool);
    });
    res.simd_gflops = flops / t / 1e9;
  }
  rt::codegen::set_forced_isa(std::nullopt);

  res.speedup = res.simd_gflops / res.scalar_gflops;
  res.bitwise_match = bitwise_equal(c_scalar, c_simd);
  return res;
}

void write_codegen_json(const std::string& path, std::size_t threads,
                        const std::vector<ChainResult>& chains,
                        const UkrResult& ukr, bool speedup_gate_ok) {
  std::ofstream os(path);
  os << "{\n  \"threads\": " << threads << ",\n  \"best_isa\": \""
     << hw::simd_isa_name(hw::best_simd_isa()) << "\",\n  \"chains\": [\n";
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const ChainResult& c = chains[i];
    os << "    {\"label\": \"" << c.label << "\", \"elems\": " << c.elems
       << ", \"instrs\": " << c.instrs
       << ", \"exact\": " << (c.exact ? "true" : "false")
       << ", \"interp_gbytes_per_s\": " << c.interp_gbytes_per_s
       << ", \"best_speedup\": " << c.best_speedup
       << ", \"max_rel_err\": " << c.max_rel_err
       << ", \"bitwise_ok\": " << (c.bitwise_ok ? "true" : "false")
       << ", \"parity_ok\": " << (c.parity_ok ? "true" : "false")
       << ", \"per_isa\": [";
    for (std::size_t j = 0; j < c.per_isa.size(); ++j)
      os << (j ? ", " : "") << "{\"isa\": \"" << c.per_isa[j].isa
         << "\", \"gbytes_per_s\": " << c.per_isa[j].gbytes_per_s
         << ", \"speedup\": " << c.per_isa[j].speedup << "}";
    os << "]}" << (i + 1 < chains.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"gemm_micro_kernel\": {\"label\": \"" << ukr.label
     << "\", \"scalar_tile\": \"" << ukr.scalar_tile << "\", \"simd_tile\": \""
     << ukr.simd_tile << "\", \"scalar_gflops\": " << ukr.scalar_gflops
     << ", \"simd_gflops\": " << ukr.simd_gflops << ", \"speedup\": " << ukr.speedup
     << ", \"bitwise_match\": " << (ukr.bitwise_match ? "true" : "false")
     << "},\n  \"speedup_gate_2x\": " << (speedup_gate_ok ? "true" : "false")
     << "\n}\n";
}

void write_json(const std::string& path, std::size_t threads,
                const std::vector<GemmResult>& gemms,
                const std::vector<ConvResult>& convs,
                const std::vector<TrafficPoint>& traffic, bool traffic_trend_ok) {
  std::ofstream os(path);
  os << "{\n  \"threads\": " << threads << ",\n  \"model_cache_bytes\": "
     << rt::gemm_model_cache_bytes() << ",\n  \"gemm\": [\n";
  for (std::size_t i = 0; i < gemms.size(); ++i) {
    const GemmResult& r = gemms[i];
    os << "    {\"label\": \"" << r.label << "\", \"m\": " << r.m << ", \"n\": " << r.n
       << ", \"k\": " << r.k << ", \"blocked_gflops\": " << r.blocked_gflops
       << ", \"reference_gflops\": " << r.reference_gflops
       << ", \"speedup\": " << r.speedup
       << ", \"measured_traffic_bytes\": " << r.measured_traffic_bytes
       << ", \"model_traffic_bytes\": " << r.model_traffic_bytes
       << ", \"bitwise_match\": " << (r.bitwise_match ? "true" : "false")
       << ", \"deterministic\": " << (r.deterministic ? "true" : "false") << "}"
       << (i + 1 < gemms.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"conv\": [\n";
  for (std::size_t i = 0; i < convs.size(); ++i) {
    const ConvResult& r = convs[i];
    os << "    {\"label\": \"" << r.label
       << "\", \"blocked_gflops\": " << r.blocked_gflops
       << ", \"reference_gflops\": " << r.reference_gflops
       << ", \"speedup\": " << r.speedup
       << ", \"forward_bitwise\": " << (r.forward_bitwise ? "true" : "false") << "}"
       << (i + 1 < convs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"traffic_sweep\": [\n";
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    const TrafficPoint& p = traffic[i];
    os << "    {\"edge\": " << p.edge << ", \"measured_ratio\": " << p.measured_ratio
       << ", \"model_ratio\": " << p.model_ratio << "}"
       << (i + 1 < traffic.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"traffic_trend_matches_model\": "
     << (traffic_trend_ok ? "true" : "false") << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t threads = 8;
  std::string out_path = "BENCH_kernels.json";
  std::string codegen_out_path = "BENCH_codegen.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--codegen-out" && i + 1 < argc) {
      codegen_out_path = argv[++i];
    } else {
      std::cerr << "usage: kernel_bench [--smoke] [--threads N] [--out PATH] "
                   "[--codegen-out PATH]\n";
      return 2;
    }
  }

  conc::ThreadPool pool(threads);
  const int reps = smoke ? 1 : 3;

  // GEMM shapes from the paper's workloads: the word-LM output projection
  // (batch*seq x hidden -> vocab), an LSTM gate block, an NMT attention
  // score, a ResNet-50 3x3 im2col at 14^2 spatial, and the square classic.
  std::vector<GemmShape> shapes;
  if (smoke) {
    shapes = {{"smoke_square", 96, 96, 96}, {"smoke_odd", 67, 35, 129}};
  } else {
    shapes = {
        {"wordlm_projection", 640, 10000, 1024},  // (b*s x h) . (h x vocab)
        {"lstm_gates", 128, 4096, 2048},          // gate block at h=1024
        {"nmt_attention", 640, 640, 1024},        // score = Q . K^T
        {"resnet_conv_im2col", 3136, 256, 2304},  // 56^2 x (3*3*256) . 256
        {"square_1024", 1024, 1024, 1024},
    };
  }

  std::vector<GemmResult> gemms;
  util::Table gemm_table(
      {"shape", "m", "n", "k", "blocked GF/s", "ref GF/s", "speedup", "bitwise"});
  bool ok = true;
  for (const GemmShape& s : shapes) {
    const GemmResult r = bench_gemm_shape(s, pool, reps);
    ok = ok && r.bitwise_match && r.deterministic;
    gemm_table.add_row({r.label, std::to_string(r.m), std::to_string(r.n),
                        std::to_string(r.k), util::format_sig(r.blocked_gflops, 3),
                        util::format_sig(r.reference_gflops, 3),
                        util::format_sig(r.speedup, 3) + "x",
                        r.bitwise_match && r.deterministic ? "yes" : "NO"});
    gemms.push_back(r);
  }
  std::cout << "== blocked GEMM vs reference (threads=" << threads << ") ==\n";
  gemm_table.print(std::cout);

  std::vector<ConvResult> convs;
  util::Table conv_table({"conv", "blocked GF/s", "ref GF/s", "speedup", "bitwise"});
  if (smoke) {
    convs.push_back(bench_conv(1, 8, 8, 16, pool, reps, "smoke_conv_8x8x8"));
  } else {
    convs.push_back(bench_conv(4, 28, 64, 64, pool, reps, "resnet_28x28x64"));
    convs.push_back(bench_conv(2, 56, 64, 64, pool, reps, "resnet_56x56x64"));
  }
  for (const ConvResult& r : convs) {
    ok = ok && r.forward_bitwise;
    conv_table.add_row({r.label, util::format_sig(r.blocked_gflops, 3),
                        util::format_sig(r.reference_gflops, 3),
                        util::format_sig(r.speedup, 3) + "x",
                        r.forward_bitwise ? "yes" : "NO"});
  }
  std::cout << "\n== conv2d (im2col + blocked GEMM) vs reference ==\n";
  conv_table.print(std::cout);

  const std::vector<std::int64_t> edges =
      smoke ? std::vector<std::int64_t>{24, 96} : std::vector<std::int64_t>{24, 48, 96, 192};
  const std::vector<TrafficPoint> traffic = traffic_sweep(pool, edges);
  util::Table traffic_table({"edge", "measured bytes/compulsory", "model bytes/compulsory"});
  for (const TrafficPoint& p : traffic)
    traffic_table.add_row({std::to_string(p.edge), util::format_sig(p.measured_ratio, 3),
                           util::format_sig(p.model_ratio, 3)});
  std::cout << "\n== traffic vs hw::tiled_matmul_bytes (fixed 8 KiB tile model) ==\n";
  traffic_table.print(std::cout);

  const bool traffic_trend_ok =
      traffic.back().measured_ratio > traffic.front().measured_ratio &&
      traffic.back().model_ratio > traffic.front().model_ratio;
  ok = ok && traffic_trend_ok;
  std::cout << "\ntraffic trend matches cache model: " << (traffic_trend_ok ? "yes" : "NO")
            << "\n";

  // Section 4: compiled fused pointwise vs the interpreter, per ISA.
  const std::int64_t chain_n = smoke ? 8192 : (1 << 20);
  const std::int64_t chain_hidden = smoke ? 64 : 1024;
  const std::vector<ChainSpec> chain_specs = {
      lstm_cell_chain(chain_n),
      rhn_carry_chain(chain_n),
      residual_bias_relu_chain(chain_n, chain_hidden),
      gate_backprop_chain(chain_n),
  };
  std::vector<ChainResult> chains;
  util::Table chain_table({"chain", "elems", "instrs", "interp GB/s",
                           "best GB/s", "speedup", "max rel err", "parity"});
  for (const ChainSpec& spec : chain_specs) {
    const ChainResult r = bench_chain(spec, pool, reps);
    ok = ok && r.parity_ok;
    double best_gbps = 0;
    for (const ChainIsaResult& per : r.per_isa)
      best_gbps = std::max(best_gbps, per.gbytes_per_s);
    chain_table.add_row(
        {r.label, std::to_string(r.elems), std::to_string(r.instrs),
         util::format_sig(r.interp_gbytes_per_s, 3), util::format_sig(best_gbps, 3),
         util::format_sig(r.best_speedup, 3) + "x",
         util::format_sig(r.max_rel_err, 2),
         r.parity_ok ? (r.exact ? "bitwise" : "eps") : "NO"});
    chains.push_back(r);
  }
  std::cout << "\n== codegen: compiled fused pointwise vs interpreter (best isa: "
            << hw::simd_isa_name(hw::best_simd_isa()) << ") ==\n";
  chain_table.print(std::cout);

  const GemmShape ukr_shape =
      smoke ? GemmShape{"smoke_square", 96, 96, 96}
            : GemmShape{"lstm_gates", 128, 4096, 2048};
  const UkrResult ukr = bench_gemm_ukr(ukr_shape, pool, reps);
  ok = ok && ukr.bitwise_match;
  std::cout << "\n== codegen: GEMM micro-kernel scalar " << ukr.scalar_tile
            << " vs compiled " << ukr.simd_tile << " (" << ukr.label << ") ==\n"
            << "scalar " << util::format_sig(ukr.scalar_gflops, 3)
            << " GF/s, compiled " << util::format_sig(ukr.simd_gflops, 3)
            << " GF/s, speedup " << util::format_sig(ukr.speedup, 3)
            << "x, bitwise " << (ukr.bitwise_match ? "yes" : "NO") << "\n";

  // The tentpole's acceptance gate: outside --smoke (whose shapes are too
  // small to measure honestly), some paper-derived chain must run >= 2x
  // faster compiled than interpreted.
  bool speedup_gate_ok = true;
  if (!smoke) {
    speedup_gate_ok = false;
    for (const ChainResult& r : chains)
      speedup_gate_ok = speedup_gate_ok || r.best_speedup >= 2.0;
    ok = ok && speedup_gate_ok;
    std::cout << "compiled speedup >= 2x on some chain: "
              << (speedup_gate_ok ? "yes" : "NO") << "\n";
  }

  write_json(out_path, threads, gemms, convs, traffic, traffic_trend_ok);
  std::cout << "wrote " << out_path << "\n";
  write_codegen_json(codegen_out_path, threads, chains, ukr, speedup_gate_ok);
  std::cout << "wrote " << codegen_out_path << "\n";
  if (!ok) {
    std::cerr << "kernel_bench: FAILURE (bitwise/determinism/traffic check failed)\n";
    return 1;
  }
  return 0;
}

// What-if estimator accuracy bench: can the Daydream-style re-simulation
// (src/whatif/) predict the measured fusion win from an UNFUSED profile?
//
// For each model the bench profiles one unfused training step, calibrates
// the per-op scheduling surcharge against the measured span, plans the
// fusion groups ir::fuse_graph would form, rewrites the trace with the
// fuse-group duration model, and re-simulates — all without executing the
// fused program. It then runs the real fused step and compares.
//
// Console table + BENCH_whatif.json per model:
//   - ops unfused / predicted fused / measured fused (the predicted node
//     count must match the real rewrite exactly — it comes from the same
//     pass on a clone)
//   - measured unfused span, calibrated overhead/op
//   - predicted vs measured fused span, relative error
//
// Hard failures (nonzero exit): predicted fused op count differing from
// the measured fused graph, identity re-simulation off the measured span
// by more than 1%, or — the headline calibration gate — relative
// step-time error above 15% on the word_lm case (the PR that introduced
// the fusion rewrite measured its win on word_lm; the estimator must
// reproduce that number from the unfused profile alone). Other models'
// errors are reported for the trajectory but not gated: their toy-size
// fused steps are GEMM-dominated, so the gate would mostly measure GEMM
// wall noise, not the estimator.
//
// Steps run on the sequential schedule: the gate compares one measured
// number against one predicted number, and the sequential span is the
// most repeatable of the executor's schedules at these sizes.
//
// A second section runs the same recipe on the OTHER optimization this
// repo can both predict and execute: the compiled SIMD pointwise path.
// Each model's fused step is profiled with the interpreter kernels
// (ExecutorOptions::simd off — every FusedPointwise op tagged
// "pointwise-interp"), the per-class speedup is microbenchmarked on the
// model's own largest fused program (interp vs compiled, outside the
// step), the interp trace is rewritten with scale_kernel_class and
// re-simulated, and the prediction is compared against an interleaved
// measured step with simd on. Hard failures: kernel_class tags missing
// from either profile, op counts differing between the two paths, or
// (word_lm again) relative span error above the same 15% gate.
//
// Flags: --smoke (2 models, fewer reps — CI), --threads N (pool for the
// executor; the schedule stays sequential), --out PATH.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/concurrency/thread_pool.h"
#include "src/ir/fusion.h"
#include "src/ir/graph.h"
#include "src/ir/ops.h"
#include "src/ir/serialize.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"
#include "src/runtime/kernels.h"
#include "src/util/format.h"
#include "src/util/table.h"
#include "src/whatif/resim.h"
#include "src/whatif/trace.h"
#include "src/whatif/transform.h"

namespace {

using namespace gf;

constexpr double kGateThreshold = 0.15;       // fusion-case relative error
constexpr double kIdentityThreshold = 0.01;   // identity re-sim vs span

std::string ratio_str(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", r);
  return buf;
}

struct ModelCase {
  std::string name;
  models::ModelSpec spec;
  double hidden;
  double batch;
  bool gated;  // the calibration-gate case
};

std::vector<ModelCase> bench_models(bool smoke) {
  std::vector<ModelCase> cases;
  {
    models::WordLmConfig cfg;
    cfg.vocab = 60;
    cfg.seq_length = 6;
    cfg.layers = 2;
    cases.push_back({"word_lm", models::build_word_lm(cfg), smoke ? 8.0 : 24.0,
                     smoke ? 2.0 : 4.0, true});
  }
  {
    models::ResNetConfig cfg;
    cfg.depth = 18;
    cfg.image_size = 32;
    cfg.classes = 10;
    cases.push_back({"resnet", models::build_resnet(cfg), 8, 2, false});
  }
  if (smoke) return cases;
  {
    models::TransformerLmConfig cfg;
    cfg.vocab = 60;
    cfg.layers = 2;
    cfg.seq_length = 8;
    cases.push_back({"transformer_lm", models::build_transformer_lm(cfg), 24, 4, false});
  }
  {
    models::NmtConfig cfg;
    cfg.vocab_src = 40;
    cfg.vocab_tgt = 40;
    cfg.src_length = 5;
    cfg.tgt_length = 4;
    cfg.decoder_layers = 2;
    cases.push_back({"nmt", models::build_nmt(cfg), 24, 4, false});
  }
  return cases;
}

/// Profiles `reps` steady-state steps of the unfused AND fused executors,
/// INTERLEAVED, and returns each path's best-of-reps report. Interleaving
/// matters more than rep count here: machine-load drift between two
/// separate measurement phases shows up directly as prediction "error",
/// while alternating steps expose both paths to the same environment.
std::pair<rt::ProfileReport, rt::ProfileReport> profile_both(
    const models::ModelSpec& spec, const sym::Bindings& bind, conc::ThreadPool& pool,
    int reps) {
  rt::ExecutorOptions opt;
  opt.pool = &pool;
  opt.fuse = false;
  // Plan memory as fusion_bench does: with the slab the step pays no
  // per-op allocation, so the calibrated surcharge prices dispatch alone
  // and the measured fusion win is the one the rewrite was PR'd with.
  opt.memory_plan = true;
  opt.schedule = rt::Schedule::kSequential;
  rt::ExecutorOptions fused_opt = opt;
  fused_opt.fuse = true;
  rt::Executor unfused(*spec.graph, bind, opt);
  rt::Executor fused(*spec.graph, bind, fused_opt);
  // Steady state for both: weight grads + slab + GEMM scratch warm.
  unfused.run_step();
  unfused.run_step();
  fused.run_step();
  fused.run_step();
  rt::ProfileReport best_u = unfused.run_step();
  rt::ProfileReport best_f = fused.run_step();
  for (int r = 1; r < reps; ++r) {
    rt::ProfileReport u = unfused.run_step();
    if (u.wall_seconds < best_u.wall_seconds) best_u = u;
    rt::ProfileReport f = fused.run_step();
    if (f.wall_seconds < best_f.wall_seconds) best_f = f;
  }
  return {std::move(best_u), std::move(best_f)};
}

// ---------------------------------------------------------------------------
// Section 2: SIMD codegen payoff predicted from an interpreter-path profile.
// ---------------------------------------------------------------------------

/// Interleaved best-of-reps fused steps: simd off (interpreter pointwise,
/// tagged "pointwise-interp") and simd on ("pointwise-simd").
std::pair<rt::ProfileReport, rt::ProfileReport> profile_simd_pair(
    const models::ModelSpec& spec, const sym::Bindings& bind, conc::ThreadPool& pool,
    int reps) {
  rt::ExecutorOptions opt;
  opt.pool = &pool;
  opt.fuse = true;
  opt.memory_plan = true;
  opt.schedule = rt::Schedule::kSequential;
  opt.simd = false;
  rt::ExecutorOptions simd_opt = opt;
  simd_opt.simd = true;
  rt::Executor interp(*spec.graph, bind, opt);
  rt::Executor simd(*spec.graph, bind, simd_opt);
  interp.run_step();
  interp.run_step();
  simd.run_step();
  simd.run_step();
  rt::ProfileReport best_i = interp.run_step();
  rt::ProfileReport best_s = simd.run_step();
  for (int r = 1; r < reps; ++r) {
    rt::ProfileReport i = interp.run_step();
    if (i.wall_seconds < best_i.wall_seconds) best_i = i;
    rt::ProfileReport s = simd.run_step();
    if (s.wall_seconds < best_s.wall_seconds) best_s = s;
  }
  return {std::move(best_i), std::move(best_s)};
}

std::vector<float> random_vec(std::size_t n, std::uint32_t seed) {
  std::vector<float> v(n);
  std::uint32_t s = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    v[i] = static_cast<float>(s % 20011u) / 10005.5f - 1.0f;
  }
  return v;
}

/// The microbenchmark that feeds the prediction: interp-vs-compiled
/// speedup of the model's own largest fused pointwise program at its real
/// step size. One measured number per model — the Daydream approximation
/// applies it to EVERY pointwise-interp op in the trace; how well that
/// single-point model holds across the model's mix of program sizes is
/// exactly what the cross-check measures. Returns 1 when the fused graph
/// has no pointwise programs.
double microbench_simd_speedup(const ir::Graph& graph, const sym::Bindings& bind,
                               conc::ThreadPool& pool) {
  const std::unique_ptr<ir::Graph> fused = ir::clone_graph(graph);
  ir::fuse_graph(*fused);
  const ir::FusedPointwiseOp* largest = nullptr;
  std::int64_t largest_elems = 0;
  for (const ir::Op* op : fused->topological_order()) {
    if (op->type() != ir::OpType::kFusedPointwise) continue;
    const auto dims = op->output(0)->shape().eval(bind);
    std::int64_t elems = 1;
    for (std::int64_t d : dims) elems *= d;
    if (elems > largest_elems) {
      largest_elems = elems;
      largest = static_cast<const ir::FusedPointwiseOp*>(op);
    }
  }
  if (largest == nullptr) return 1.0;

  std::vector<rt::DenseTensor> storage;
  storage.reserve(largest->inputs().size());
  std::vector<const rt::DenseTensor*> inputs;
  for (std::size_t i = 0; i < largest->inputs().size(); ++i) {
    auto dims = largest->inputs()[i]->shape().eval(bind);
    storage.emplace_back(dims, ir::DataType::kFloat32);
    const auto n = static_cast<std::size_t>(storage.back().numel());
    const std::vector<float> v = random_vec(n, static_cast<std::uint32_t>(71 + i));
    std::memcpy(storage.back().fdata(), v.data(), n * sizeof(float));
  }
  for (const rt::DenseTensor& t : storage) inputs.push_back(&t);
  rt::DenseTensor out(largest->output(0)->shape().eval(bind), ir::DataType::kFloat32);
  std::vector<double> alphas;
  for (const ir::FusedInstr& ins : largest->program())
    alphas.push_back(ins.alpha.eval(bind));

  // Tiny tensors: take the best of many reps so the ratio is a kernel
  // property, not a scheduling artifact.
  const int reps = 64;
  rt::KernelStats stats;
  double t_interp = 1e300;
  double t_simd = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    rt::fused_pointwise(largest->program(), inputs, alphas, out, pool, stats);
    t_interp = std::min(
        t_interp, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                      .count());
    t0 = std::chrono::steady_clock::now();
    if (!rt::fused_pointwise_simd(largest->program(), inputs, alphas, out, pool,
                                  stats, hw::best_simd_isa()))
      return 1.0;
    t_simd = std::min(
        t_simd, std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count());
  }
  return t_interp / t_simd;
}

struct SimdCaseResult {
  std::string name;
  bool gated = false;
  std::size_t ops = 0;
  std::size_t ops_simd = 0;
  std::size_t pointwise_ops = 0;
  bool tags_ok = false;    // interp profile all "pointwise-interp", simd all
                           // "pointwise-simd" on FusedPointwise ops
  double kernel_speedup = 0;  // microbenchmarked per-class speedup
  double interp_span = 0;
  double predicted_span = 0;
  double measured_span = 0;

  double relative_error() const {
    return measured_span > 0 ? std::fabs(predicted_span - measured_span) / measured_span
                             : 0;
  }
  bool gate_ok() const { return !gated || relative_error() <= kGateThreshold; }
  bool ok() const { return tags_ok && ops == ops_simd && gate_ok(); }
};

/// Every FusedPointwise op must carry the expected implementation tag;
/// other op types carry none today, and any tag on them is fine.
bool check_tags(const whatif::Trace& trace, const char* expected,
                std::size_t* pointwise_ops) {
  std::size_t count = 0;
  bool ok = true;
  for (const whatif::TraceOp& op : trace.ops) {
    if (op.type != "FusedPointwise") continue;
    ++count;
    ok = ok && op.kernel_class == expected;
  }
  *pointwise_ops = count;
  return ok;
}

struct CaseResult {
  std::string name;
  bool gated = false;
  std::size_t ops_unfused = 0;
  std::size_t ops_predicted = 0;
  std::size_t ops_measured = 0;
  std::size_t groups = 0;
  double unfused_span = 0;
  double overhead_per_op = 0;
  double identity_error = 0;
  double predicted_span = 0;
  double measured_span = 0;

  double relative_error() const {
    return measured_span > 0 ? std::fabs(predicted_span - measured_span) / measured_span
                             : 0;
  }
  bool ops_match() const { return ops_predicted == ops_measured; }
  bool identity_ok() const { return identity_error <= kIdentityThreshold; }
  bool gate_ok() const { return !gated || relative_error() <= kGateThreshold; }
  bool ok() const { return ops_match() && identity_ok() && gate_ok(); }
};

void write_json(const std::string& path, std::size_t threads,
                const std::vector<CaseResult>& results,
                const std::vector<SimdCaseResult>& simd_results) {
  std::ofstream os(path);
  os << "{\n  \"threads\": " << threads
     << ",\n  \"gate_threshold\": " << kGateThreshold << ",\n  \"models\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    os << "    {\"name\": \"" << r.name << "\", \"gated\": "
       << (r.gated ? "true" : "false") << ", \"ops_unfused\": " << r.ops_unfused
       << ", \"ops_predicted\": " << r.ops_predicted
       << ", \"ops_measured\": " << r.ops_measured
       << ", \"fuse_groups\": " << r.groups
       << ",\n     \"unfused_span_seconds\": " << r.unfused_span
       << ", \"overhead_seconds_per_op\": " << r.overhead_per_op
       << ", \"identity_relative_error\": " << r.identity_error
       << ",\n     \"predicted_fused_span_seconds\": " << r.predicted_span
       << ", \"measured_fused_span_seconds\": " << r.measured_span
       << ", \"relative_error\": " << r.relative_error()
       << ", \"predicted_speedup\": "
       << (r.predicted_span > 0 ? r.unfused_span / r.predicted_span : 0)
       << ", \"measured_speedup\": "
       << (r.measured_span > 0 ? r.unfused_span / r.measured_span : 0)
       << ", \"pass\": " << (r.ok() ? "true" : "false") << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"simd_cases\": [\n";
  for (std::size_t i = 0; i < simd_results.size(); ++i) {
    const SimdCaseResult& r = simd_results[i];
    os << "    {\"name\": \"" << r.name << "\", \"gated\": "
       << (r.gated ? "true" : "false") << ", \"ops\": " << r.ops
       << ", \"ops_simd\": " << r.ops_simd
       << ", \"pointwise_ops\": " << r.pointwise_ops
       << ", \"kernel_class_tags_ok\": " << (r.tags_ok ? "true" : "false")
       << ",\n     \"microbench_kernel_speedup\": " << r.kernel_speedup
       << ", \"interp_span_seconds\": " << r.interp_span
       << ",\n     \"predicted_simd_span_seconds\": " << r.predicted_span
       << ", \"measured_simd_span_seconds\": " << r.measured_span
       << ", \"relative_error\": " << r.relative_error()
       << ", \"pass\": " << (r.ok() ? "true" : "false") << "}"
       << (i + 1 < simd_results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t threads = 2;
  std::string out_path = "BENCH_whatif.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: whatif_bench [--smoke] [--threads N] [--out PATH]\n";
      return 2;
    }
  }

  conc::ThreadPool pool(threads);
  const int reps = smoke ? 5 : 7;

  std::vector<CaseResult> results;
  util::Table table({"model", "ops", "pred ops", "meas ops", "groups", "overhead/op",
                     "pred step", "meas step", "err", "pred x", "meas x", "checks"});
  bool ok = true;
  for (ModelCase& c : bench_models(smoke)) {
    const sym::Bindings bind = c.spec.bind(c.hidden, c.batch);
    CaseResult r;
    r.name = c.name;
    r.gated = c.gated;

    // 1. Profile unfused + fused steps interleaved; lift the unfused one
    // into a whatif trace. The fused report is only consulted in step 4.
    const auto [unfused, fused] = profile_both(c.spec, bind, pool, reps);
    const whatif::Trace trace = whatif::from_report(unfused);
    r.ops_unfused = trace.ops.size();
    r.unfused_span = trace.span_seconds();

    // 2. Calibrate the per-op surcharge and check the identity property.
    r.overhead_per_op = whatif::calibrate_overhead(trace);
    whatif::ResimOptions opt;
    opt.overhead_seconds_per_op = r.overhead_per_op;
    const double identity = whatif::resimulate(trace, opt).makespan_seconds;
    r.identity_error = r.unfused_span > 0
                           ? std::fabs(identity - r.unfused_span) / r.unfused_span
                           : 0;

    // 3. Predict the fused step without executing it.
    const auto groups = whatif::plan_fusion_groups(*c.spec.graph, bind, trace);
    r.groups = groups.size();
    const whatif::Trace fused_trace = whatif::fuse_groups(trace, groups);
    r.ops_predicted = fused_trace.ops.size();
    r.predicted_span = whatif::resimulate(fused_trace, opt).makespan_seconds;

    // 4. Compare against the real fused step (span, like the prediction:
    // first op start to last op end, excluding step setup/teardown).
    r.ops_measured = fused.timeline.size();
    r.measured_span = whatif::from_report(fused).span_seconds();

    ok = ok && r.ok();
    table.add_row({r.name, std::to_string(r.ops_unfused),
                   std::to_string(r.ops_predicted), std::to_string(r.ops_measured),
                   std::to_string(r.groups),
                   util::format_duration(r.overhead_per_op, 3),
                   util::format_duration(r.predicted_span, 3),
                   util::format_duration(r.measured_span, 3),
                   util::format_percent(r.relative_error()),
                   ratio_str(r.predicted_span > 0 ? r.unfused_span / r.predicted_span : 0),
                   ratio_str(r.measured_span > 0 ? r.unfused_span / r.measured_span : 0),
                   r.ok() ? (r.gated ? "ok (gated)" : "ok") : "FAIL"});
    results.push_back(r);
  }

  std::cout << "== what-if fusion prediction vs measurement (sequential, threads="
            << threads << ") ==\n";
  table.print(std::cout);

  // Section 2: predict the SIMD codegen payoff from the interpreter-path
  // profile, then check against an interleaved measured SIMD step.
  std::vector<SimdCaseResult> simd_results;
  util::Table simd_table({"model", "pw ops", "kernel x", "interp span", "pred span",
                          "meas span", "err", "checks"});
  for (ModelCase& c : bench_models(smoke)) {
    const sym::Bindings bind = c.spec.bind(c.hidden, c.batch);
    SimdCaseResult r;
    r.name = c.name;
    r.gated = c.gated;

    const auto [interp, simd] = profile_simd_pair(c.spec, bind, pool, reps);
    const whatif::Trace trace = whatif::from_report(interp);
    const whatif::Trace simd_trace = whatif::from_report(simd);
    r.ops = trace.ops.size();
    r.ops_simd = simd_trace.ops.size();
    r.interp_span = trace.span_seconds();
    r.measured_span = simd_trace.span_seconds();
    std::size_t pw_simd = 0;
    r.tags_ok = check_tags(trace, "pointwise-interp", &r.pointwise_ops) &&
                check_tags(simd_trace, "pointwise-simd", &pw_simd) &&
                r.pointwise_ops == pw_simd;

    r.kernel_speedup = microbench_simd_speedup(*c.spec.graph, bind, pool);
    whatif::ResimOptions opt;
    opt.overhead_seconds_per_op = whatif::calibrate_overhead(trace);
    const whatif::Trace scaled = whatif::scale_kernel_class(
        trace, whatif::ScaleClass{"pointwise-interp", r.kernel_speedup});
    r.predicted_span = whatif::resimulate(scaled, opt).makespan_seconds;

    ok = ok && r.ok();
    simd_table.add_row({r.name, std::to_string(r.pointwise_ops),
                        ratio_str(r.kernel_speedup),
                        util::format_duration(r.interp_span, 3),
                        util::format_duration(r.predicted_span, 3),
                        util::format_duration(r.measured_span, 3),
                        util::format_percent(r.relative_error()),
                        r.ok() ? (r.gated ? "ok (gated)" : "ok") : "FAIL"});
    simd_results.push_back(r);
  }
  std::cout << "\n== what-if SIMD codegen prediction vs measurement ==\n";
  simd_table.print(std::cout);

  write_json(out_path, threads, results, simd_results);
  std::cout << "wrote " << out_path << "\n";
  if (!ok) {
    std::cerr << "whatif_bench: op-count / identity / " << kGateThreshold * 100
              << "% calibration gate FAILED\n";
    return 1;
  }
  return 0;
}

// Reproduces Figure 10: minimal training-step memory footprint vs model
// size (fixed subbatch), via the topological-traversal estimator, and
// cross-checks one point per domain against the numeric executor's
// allocator peak (the role TensorFlow's allocator plays in the paper).
#include "bench/fig_sweep_common.h"
#include "src/ir/footprint.h"
#include "src/runtime/executor.h"

int main() {
  using namespace gf;
  bench::banner("Figure 10", "minimal memory footprint as model size grows");

  const auto targets = analysis::log_spaced(2e7, 4e8, 8);
  const auto series = bench::sweep_all_domains(targets, /*with_footprint=*/true);

  bench::print_sweep(targets, series, "minimal footprint GB (topological estimate)",
                     [](const analysis::StepCounts& c) {
                       return util::format_sig(c.footprint_bytes / 1e9, 4);
                     });

  std::cout << "\nAllocator cross-check (numeric executor, toy sizes):\n";
  util::Table check({"model", "topological estimate", "executor allocator peak"});
  struct Case {
    const char* name;
    models::ModelSpec spec;
    double hidden, batch;
  };
  std::vector<Case> cases;
  cases.push_back({"word LM", models::build_word_lm({.vocab = 60, .seq_length = 6}), 16, 4});
  cases.push_back(
      {"char LM", models::build_char_lm({.vocab = 30, .depth = 3, .seq_length = 5}), 16, 4});
  cases.push_back({"ResNet-18",
                   models::build_resnet({.depth = 18, .image_size = 32, .classes = 10}),
                   8, 2});
  for (auto& c : cases) {
    const auto bind = c.spec.bind(c.hidden, c.batch);
    const auto fp = ir::minimal_footprint(*c.spec.graph, bind);
    rt::Executor ex(*c.spec.graph, bind);
    ex.run_step();
    const auto report = ex.run_step();  // steady state
    check.add_row({c.name, util::format_bytes(fp.total_bytes),
                   util::format_bytes(static_cast<double>(report.peak_allocated_bytes))});
  }
  bench::print_with_csv(check);
  return 0;
}

// Methodology companion (paper §4.1): the TFprof-style per-op-type
// breakdown behind the aggregate numbers — where each domain's FLOPs and
// bytes actually go — plus the memory-over-time profile whose maximum is
// the reported footprint.
#include <algorithm>
#include <map>

#include "bench/bench_common.h"
#include "src/concurrency/thread_pool.h"
#include "src/ir/footprint.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"
#include "src/scaling/projection.h"

int main() {
  using namespace gf;
  bench::banner("Profile", "per-op-type FLOP/byte breakdown and memory timeline");

  for (const auto& spec : models::build_all_domains()) {
    const auto& d = scaling::domain_scaling(spec.domain);
    // Characterize at a current-SOTA-scale instance.
    const double params = scaling::project_frontier(d).current_params;
    const auto bind = spec.bind(spec.hidden_for_params(params), d.paper_subbatch);

    struct Agg {
      double flops = 0, bytes = 0;
      std::size_t count = 0;
    };
    const auto aggregate = [&](const ir::Graph& g, std::map<std::string, Agg>& by_type,
                               double& total_flops, double& total_bytes) {
      for (const auto& op : g.ops()) {
        Agg& a = by_type[ir::op_type_name(op->type())];
        const double f = op->flops().eval(bind);
        const double b = op->bytes_accessed().eval(bind);
        a.flops += f;
        a.bytes += b;
        ++a.count;
        total_flops += f;
        total_bytes += b;
      }
    };
    std::map<std::string, Agg> by_type, fused_by_type;
    double total_flops = 0, total_bytes = 0;
    double fused_total_flops = 0, fused_total_bytes = 0;
    aggregate(*spec.graph, by_type, total_flops, total_bytes);
    // Same model after the fusion rewrite: FLOPs land in the same places
    // (conserved per group), bytes lose the eliminated intermediates.
    const auto fspec = bench::fused_spec(spec);
    aggregate(*fspec.graph, fused_by_type, fused_total_flops, fused_total_bytes);

    std::cout << "\n" << models::domain_name(spec.domain) << " at "
              << util::format_si(params) << " params, subbatch " << d.paper_subbatch
              << " (" << spec.graph->num_ops() << " ops, "
              << fspec.graph->num_ops() << " fused):\n";
    // Union of op types: fusion removes Pointwise/BiasAdd/Broadcast rows
    // and introduces FusedPointwise, so both sides must contribute rows.
    for (const auto& [type, a] : fused_by_type)
      by_type.try_emplace(type);  // zero-count row for fused-only types
    std::vector<std::pair<std::string, Agg>> rows(by_type.begin(), by_type.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second.flops > b.second.flops; });
    util::Table table({"op type", "count", "FLOPs", "% FLOPs", "bytes", "% bytes",
                       "fused count", "fused bytes"});
    for (const auto& [type, a] : rows) {
      const auto fit = fused_by_type.find(type);
      const Agg fa = fit == fused_by_type.end() ? Agg{} : fit->second;
      if (a.flops < 0.001 * total_flops && a.bytes < 0.001 * total_bytes &&
          fa.bytes < 0.001 * fused_total_bytes)
        continue;
      table.add_row({type, std::to_string(a.count), util::format_si(a.flops),
                     util::format_percent(a.flops / total_flops),
                     util::format_bytes(a.bytes),
                     util::format_percent(a.bytes / total_bytes),
                     std::to_string(fa.count), util::format_bytes(fa.bytes)});
    }
    table.print(std::cout);
    std::cout << "fusion: bytes " << util::format_bytes(total_bytes) << " -> "
              << util::format_bytes(fused_total_bytes) << " ("
              << util::format_percent(1.0 - fused_total_bytes / total_bytes)
              << " less), intensity "
              << util::format_sig(total_flops / total_bytes, 4) << " -> "
              << util::format_sig(fused_total_flops / fused_total_bytes, 4)
              << " FLOP/B\n";

    const auto timeline = ir::footprint_timeline(*spec.graph, bind);
    const auto peak = std::max_element(
        timeline.begin(), timeline.end(),
        [](const auto& a, const auto& b) { return a.live_bytes < b.live_bytes; });
    std::cout << "memory timeline: start "
              << util::format_bytes(timeline.front().live_bytes) << " -> peak "
              << util::format_bytes(peak->live_bytes) << " at op "
              << peak->op_index << "/" << timeline.size() << " ("
              << util::format_percent(static_cast<double>(peak->op_index) /
                                      timeline.size())
              << " through the step) -> end "
              << util::format_bytes(timeline.back().live_bytes) << "\n";
  }

  // Executed (not just counted) utilization, in the paper's Fig. 9 terms:
  // run one numeric training step at toy scale and report per-op-type
  // achieved GFLOP/s next to the FLOP/byte split. Matrix ops should sit
  // well above the memory-bound pointwise/reduce tail.
  {
    models::WordLmConfig cfg;
    cfg.vocab = 256;
    cfg.layers = 2;
    cfg.seq_length = 8;
    const auto spec = models::build_word_lm(cfg);
    conc::ThreadPool pool(4);
    rt::ExecutorOptions opt;
    opt.pool = &pool;
    rt::Executor ex(*spec.graph, spec.bind(64, 8), opt);
    ex.run_step();  // warm up allocations and thread-local scratch
    const rt::ProfileReport report = ex.run_step();
    std::cout << "\nword LM, numeric step at toy scale (achieved GFLOP/s per"
                 " op type):\n";
    report.print(std::cout);

    // The same step with the fusion rewrite on: the pointwise tail
    // collapses into FusedPointwise rows and the MatMul rows absorb their
    // bias/activation epilogues, bitwise-identical loss either way.
    opt.fuse = true;
    rt::Executor fex(*spec.graph, spec.bind(64, 8), opt);
    fex.run_step();
    const rt::ProfileReport fused_report = fex.run_step();
    std::cout << "\nsame step, fused (achieved GFLOP/s per op type):\n";
    fused_report.print(std::cout);
  }

  std::cout << "\nReading: matrix ops (MatMul/Conv2D + their gradients) dominate\n"
               "FLOPs everywhere, but the RNN domains spread bytes across many\n"
               "small pointwise/concat/split ops — the traffic the cache-aware\n"
               "model charges for — while the ResNet's bytes follow its convs.\n";
  return 0;
}

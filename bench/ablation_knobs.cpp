// Ablations for the paper's §6.2.3 mitigation levers on the frontier word
// LM: numeric precision (fp32 vs fp16) and optimizer slot state (SGD /
// momentum / Adam), measured as training-step footprint, traffic, Roofline
// time, and accelerators-per-worker at 32 GB.
#include <cmath>

#include "bench/bench_common.h"
#include "src/hw/roofline.h"
#include "src/ir/footprint.h"
#include "src/models/word_lm.h"

namespace {

using namespace gf;

struct Variant {
  std::string label;
  models::WordLmConfig config;
};

}  // namespace

int main() {
  bench::banner("Ablation", "precision & optimizer effects on the frontier word LM");

  models::WordLmConfig base;
  base.vocab = 800000;
  base.projection = true;

  std::vector<Variant> variants;
  variants.push_back({"fp32 + SGD (paper baseline)", base});
  {
    Variant v{"fp16 + SGD", base};
    v.config.training.half_precision = true;
    variants.push_back(v);
  }
  {
    Variant v{"fp32 + momentum", base};
    v.config.training.optimizer = ir::Optimizer::kMomentum;
    variants.push_back(v);
  }
  {
    Variant v{"fp32 + Adam", base};
    v.config.training.optimizer = ir::Optimizer::kAdam;
    variants.push_back(v);
  }
  {
    Variant v{"fp16 + Adam", base};
    v.config.training.half_precision = true;
    v.config.training.optimizer = ir::Optimizer::kAdam;
    variants.push_back(v);
  }

  const auto accel = hw::AcceleratorConfig::v100_like();
  const double target_params = 23.8e9;

  util::Table table({"variant", "footprint (GB)", "persistent (GB)", "TB/step",
                     "Roofline step (s)", "accel/worker @32GB"});
  for (const auto& v : variants) {
    const auto spec = models::build_word_lm(v.config);
    const auto bind = spec.bind(spec.hidden_for_params(target_params), 128);
    const auto fp = ir::minimal_footprint(*spec.graph, bind);
    const double flops = spec.graph->total_flops().eval(bind);
    const double bytes = spec.graph->total_bytes_accessed().eval(bind);
    const auto t = hw::roofline_step_time(accel, flops, bytes);
    table.add_row({v.label, util::format_sig(fp.total_bytes / 1e9, 4),
                   util::format_sig(fp.persistent_bytes / 1e9, 4),
                   util::format_sig(bytes / 1e12, 4),
                   util::format_sig(t.seconds(), 4),
                   std::to_string(static_cast<int>(
                       std::ceil(fp.total_bytes / accel.mem_capacity)))});
  }
  bench::print_with_csv(table);

  std::cout << "\nReading: fp16 roughly halves footprint and traffic (the §6.2.3\n"
               "'1.5-10x' memory-reduction band starts here); Adam's two slots\n"
               "double the persistent state SGD needs — at frontier sizes the\n"
               "optimizer choice alone swings accelerators-per-worker by ~2x.\n";
  return 0;
}

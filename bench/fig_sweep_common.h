// Shared driver for Figures 7-10: sweeps every domain's graph across model
// sizes at the domain's profiling subbatch and prints one series column per
// domain, exactly the layout of the paper's scatter plots.
#pragma once

#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "src/analysis/sweep.h"
#include "src/models/models.h"
#include "src/scaling/domains.h"

namespace gf::bench {

struct SweepSeries {
  std::string domain;
  std::vector<analysis::StepCounts> points;
};

/// Sweeps all domains over `param_targets` at their paper subbatch.
/// With `fused` set, each domain's graph is deep-copied and run through the
/// fusion rewrite first (FLOPs conserved, bytes shrunk), and the series is
/// labeled "<domain> +fuse".
inline std::vector<SweepSeries> sweep_all_domains(
    const std::vector<double>& param_targets, bool with_footprint,
    bool fused = false) {
  std::vector<SweepSeries> out;
  for (const auto& spec : models::build_all_domains()) {
    const models::ModelSpec use = fused ? fused_spec(spec) : spec;
    const analysis::ModelAnalyzer analyzer(use);
    const auto& d = scaling::domain_scaling(spec.domain);
    SweepSeries series;
    series.domain =
        std::string(models::domain_name(spec.domain)) + (fused ? " +fuse" : "");
    series.points = analysis::sweep_model_sizes(analyzer, param_targets,
                                                d.paper_subbatch, with_footprint);
    out.push_back(std::move(series));
  }
  return out;
}

/// Prints the sweep as a table: one row per parameter target, one column
/// per domain, values produced by `metric`.
inline void print_sweep(const std::vector<double>& param_targets,
                        const std::vector<SweepSeries>& series,
                        const std::string& value_label,
                        const std::function<std::string(const analysis::StepCounts&)>&
                            metric) {
  std::vector<std::string> headers{"model size (params)"};
  for (const auto& s : series) headers.push_back(s.domain);
  util::Table table(std::move(headers));
  for (std::size_t i = 0; i < param_targets.size(); ++i) {
    std::vector<std::string> row{util::format_si(param_targets[i])};
    for (const auto& s : series) row.push_back(metric(s.points[i]));
    table.add_row(std::move(row));
  }
  std::cout << "values: " << value_label << " (per-domain subbatch as in Table 3)\n";
  print_with_csv(table);
}

}  // namespace gf::bench

// Reproduces Table 2: asymptotic application-level compute requirements.
// Builds every domain's training-step graph, sweeps model sizes on the
// thread pool, and fits the first-order constants
//   ct = gamma*p*b,  at = lambda*p + mu*b*sqrt(p),  ft = delta*p,
// printing them against the paper's published row.
#include "bench/bench_common.h"
#include "src/analysis/first_order.h"
#include "src/models/models.h"
#include "src/scaling/domains.h"

int main() {
  using namespace gf;
  bench::banner("Table 2", "asymptotic per-parameter compute requirements");

  util::Table table({"Domain (model)", "FLOPs/param (gamma)", "(paper)",
                     "Bytes/param (lambda)", "(paper)", "mu", "(paper)",
                     "Footprint B/param (delta)", "(paper)", "r2 flops", "r2 bytes"});

  for (const auto& spec : models::build_all_domains()) {
    const analysis::ModelAnalyzer analyzer(spec);
    const auto fit = analysis::fit_first_order(
        analyzer, analysis::recommended_fit_options(spec.domain));
    const auto paper = analysis::paper_first_order(spec.domain);
    table.add_row({models::domain_name(spec.domain),
                   util::format_sig(fit.gamma, 3) + " b",
                   util::format_sig(paper.gamma) + " b", util::format_sig(fit.lambda, 4),
                   util::format_sig(paper.lambda), util::format_sig(fit.mu, 4) + " b/sqrt(p)",
                   util::format_sig(paper.mu) + " b/sqrt(p)",
                   util::format_sig(fit.delta, 3), util::format_sig(paper.delta),
                   util::format_fixed(fit.r2_flops, 4), util::format_fixed(fit.r2_bytes, 4)});
  }
  bench::print_with_csv(table);

  std::cout
      << "\nOperational intensity takes the paper's form gamma*b*sqrt(p) /\n"
         "(lambda*sqrt(p) + mu*b); derived limits at the paper's target sizes:\n";
  util::Table oi({"Domain (model)", "OI @ (target p, paper subbatch)", "(paper model)"});
  for (const auto& spec : models::build_all_domains()) {
    const analysis::ModelAnalyzer analyzer(spec);
    const auto fit = analysis::fit_first_order(
        analyzer, analysis::recommended_fit_options(spec.domain));
    const auto paper = analysis::paper_first_order(spec.domain);
    const auto& d = scaling::domain_scaling(spec.domain);
    oi.add_row({models::domain_name(spec.domain),
                util::format_sig(
                    fit.operational_intensity(d.paper_target_params, d.paper_subbatch), 3) +
                    " FLOP/B",
                util::format_sig(paper.operational_intensity(d.paper_target_params,
                                                             d.paper_subbatch),
                                 3) +
                    " FLOP/B"});
  }
  bench::print_with_csv(oi);
  return 0;
}

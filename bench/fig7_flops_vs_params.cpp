// Reproduces Figure 7: per-training-sample algorithmic FLOPs vs model size
// for all five domains. Paper headline: linear above 30-100M parameters,
// with FLOPs/parameter from 149 (NMT) to 1111 (ResNet).
#include "bench/fig_sweep_common.h"
#include "src/util/least_squares.h"

int main() {
  using namespace gf;
  bench::banner("Figure 7", "per-sample FLOPs growth with model size");

  const auto targets = analysis::log_spaced(3e7, 6e8, 9);
  const auto series = bench::sweep_all_domains(targets, /*with_footprint=*/false);

  bench::print_sweep(targets, series, "GFLOPs / train step / sample",
                     [](const analysis::StepCounts& c) {
                       return util::format_sig(c.flops_per_sample() / 1e9, 4);
                     });

  std::cout << "\nDotted-line trends (proportional fit over this range):\n";
  util::Table trends({"Domain", "FLOPs/param/sample (slope)"});
  for (const auto& s : series) {
    std::vector<double> ps, fs;
    for (const auto& c : s.points) {
      ps.push_back(c.params);
      fs.push_back(c.flops_per_sample());
    }
    trends.add_row({s.domain, util::format_sig(util::fit_proportional(ps, fs), 4)});
  }
  bench::print_with_csv(trends);
  return 0;
}

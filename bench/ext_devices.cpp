// Extension study: device comparison. The paper argues emerging
// accelerators (TPU-class: more matrix throughput, larger on-chip buffers,
// smaller/slower memory) are mis-matched to frontier RNN training. This
// bench runs every domain's frontier configuration on the Table 4
// V100-class device and a TPU-v2-class alternative.
#include <cmath>

#include "bench/bench_common.h"
#include "src/analysis/checkpointing.h"
#include "src/hw/cache_model.h"
#include "src/ir/footprint.h"
#include "src/models/models.h"
#include "src/scaling/domains.h"

int main() {
  using namespace gf;
  bench::banner("Extension", "V100-class vs TPU-v2-class at frontier sizes");

  const auto v100 = hw::AcceleratorConfig::v100_like();
  const auto tpu = hw::AcceleratorConfig::tpu_v2_like();

  util::Table table({"Domain", "step V100 (s)", "util", "step TPU-like (s)", "util",
                     "foot (GB)", "accls/worker V100", "TPU"});
  for (const auto& spec : models::build_all_domains()) {
    const auto& d = scaling::domain_scaling(spec.domain);
    const auto bind =
        spec.bind(spec.hidden_for_params(d.paper_target_params), d.paper_subbatch);
    const auto on_v100 = hw::cache_aware_step_time(*spec.graph, bind, v100);
    const auto on_tpu = hw::cache_aware_step_time(*spec.graph, bind, tpu);
    const double foot = ir::minimal_footprint(*spec.graph, bind).total_bytes;
    table.add_row({models::domain_name(spec.domain),
                   util::format_sig(on_v100.step_seconds, 4),
                   util::format_percent(on_v100.flop_utilization),
                   util::format_sig(on_tpu.step_seconds, 4),
                   util::format_percent(on_tpu.flop_utilization),
                   util::format_sig(foot / 1e9, 4),
                   std::to_string(static_cast<int>(std::ceil(foot / v100.mem_capacity))),
                   std::to_string(static_cast<int>(std::ceil(foot / tpu.mem_capacity)))});
  }
  bench::print_with_csv(table);

  std::cout << "\nActivation checkpointing (sqrt-segment rematerialization) on the\n"
               "frontier word LM's transient memory:\n";
  {
    models::WordLmConfig cfg;
    cfg.vocab = 800000;
    cfg.projection = true;
    const auto spec = models::build_word_lm(cfg);
    const auto bind = spec.bind(spec.hidden_for_params(23.8e9), 128);
    const auto fp = ir::minimal_footprint(*spec.graph, bind);
    // Treat the unrolled timesteps as the checkpointable layer axis.
    const auto t = analysis::checkpointing_tradeoff(fp.peak_transient_bytes, 80);
    util::Table ck({"quantity", "value"});
    ck.add_row({"baseline transient", util::format_bytes(t.baseline_activation_bytes)});
    ck.add_row({"checkpointed transient",
                util::format_bytes(t.checkpointed_activation_bytes)});
    ck.add_row({"segments", std::to_string(t.segments)});
    ck.add_row({"memory reduction", util::format_sig(t.memory_reduction, 3) + "x"});
    ck.add_row({"extra FLOPs", util::format_percent(t.extra_flops_fraction)});
    ck.print(std::cout);
  }

  std::cout << "\nReading: trading memory bandwidth (898 -> 300 GB/s) for matrix\n"
               "throughput is a bad deal for every domain here — the RNN steps\n"
               "run 1.6-1.8x slower despite 44% more peak FLOPs, and only the\n"
               "high-intensity ResNet approaches parity. The 16 GB capacity also\n"
               "doubles every language domain's model-parallel degree. Both\n"
               "halves of the paper's design argument — capacity and bytes, not\n"
               "throughput, gate frontier RNN training — in one table.\n"
               "Checkpointing buys ~4-5x transient memory for ~25% more compute,\n"
               "inside the paper's quoted 1.5-10x mitigation band.\n";
  return 0;
}

// Reproduces Figure 11: subbatch size vs graph-level operational intensity
// and per-sample training-step time for the projected word LM, with the
// three points of interest — ridge match, per-sample-time minimizer (the
// paper's recommendation), and intensity saturation.
#include "bench/bench_common.h"
#include "src/analysis/first_order.h"
#include "src/hw/subbatch.h"
#include "src/scaling/domains.h"

int main() {
  using namespace gf;
  bench::banner("Figure 11", "subbatch size effect on word LM intensity & step time");

  const auto accel = hw::AcceleratorConfig::v100_like();
  const auto model = analysis::paper_first_order(models::Domain::kWordLM);
  const double params = scaling::domain_scaling(models::Domain::kWordLM)
                            .paper_target_params;

  hw::SubbatchOptions options;
  options.min_batch = 1;
  options.max_batch = 262144;
  const auto choice = hw::choose_subbatch(model, params, accel, options);

  util::Table table({"subbatch", "op intensity (FLOP/B)", "step time (s)",
                     "step time / sample (s)", "footprint (GB)"});
  for (const auto& pt : choice.sweep)
    table.add_row({util::format_si(pt.batch, 0), util::format_sig(pt.op_intensity, 4),
                   util::format_sig(pt.step_seconds, 4),
                   util::format_sig(pt.per_sample_seconds, 4),
                   util::format_sig(pt.footprint_bytes / 1e9, 4)});
  bench::print_with_csv(table);

  std::cout << "\npoints of interest (paper markers):\n";
  util::Table poi({"marker", "subbatch", "note"});
  poi.add_row({"ridge match (blue)", util::format_sig(choice.ridge, 4),
               "graph OI == accelerator ridge point " +
                   util::format_sig(accel.achievable_ridge_point(), 3)});
  poi.add_row({"min per-sample time (orange)", util::format_sig(choice.best, 4),
               "the paper's choice; ~1.5x the ridge match for RNNs"});
  poi.add_row({"intensity saturation (green)", util::format_sig(choice.saturation, 4),
               "5-20x the footprint for marginal throughput"});
  bench::print_with_csv(poi);

  const auto at_best = hw::evaluate_subbatch(model, params, choice.best, accel);
  const double limit = model.gamma * params / accel.achievable_flops();
  std::cout << "\nthroughput at the chosen subbatch: "
            << util::format_percent(limit / at_best.per_sample_seconds * 0.80)
            << " of peak compute (paper: 79%).\n";
  return 0;
}

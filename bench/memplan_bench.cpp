// Memory-planner benchmark: per-op heap allocation vs the static slab plan
// (src/runtime/memplan.h) on the paper's models at toy sizes.
//
// For each model the same training step runs twice — memory_plan off
// (per-op heap, the seed behavior) and on (one slab, fixed offsets) — and
// the bench reports, as a console table and BENCH_memplan.json:
//
//   - heap allocations + bytes per steady-state step (the planned path
//     must be O(1): zero AlignedAllocator hits once the slab exists)
//   - best-of-reps step wall time for both paths
//   - plan shape: slab vs gross bytes, reuse fraction, alias count
//   - arena peaks, and a bitwise loss comparison after identical steps
//
// Hard failures (nonzero exit): planned-path allocations not O(1), loss
// bits differing between the two paths, or the planned peak exceeding the
// heap path's peak beyond alignment padding. Step-time deltas are emitted
// for the perf trajectory but not gated — wall-clock gates flake in CI.
//
// Flags: --smoke (2 models, 1 rep — CI), --threads N, --out PATH.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/concurrency/thread_pool.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"
#include "src/util/format.h"
#include "src/util/table.h"

namespace {

using namespace gf;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ModelCase {
  std::string name;
  models::ModelSpec spec;
  double hidden;
  double batch;
};

std::vector<ModelCase> bench_models(bool smoke) {
  std::vector<ModelCase> cases;
  {
    models::WordLmConfig cfg;
    cfg.vocab = 60;
    cfg.seq_length = 6;
    cfg.layers = 2;
    cases.push_back({"word_lm", models::build_word_lm(cfg), smoke ? 8.0 : 24.0,
                     smoke ? 2.0 : 4.0});
  }
  {
    models::TransformerLmConfig cfg;
    cfg.vocab = 60;
    cfg.layers = 2;
    cfg.seq_length = 8;
    cases.push_back({"transformer_lm", models::build_transformer_lm(cfg),
                     smoke ? 8.0 : 24.0, smoke ? 2.0 : 4.0});
  }
  if (smoke) return cases;
  {
    models::NmtConfig cfg;
    cfg.vocab_src = 40;
    cfg.vocab_tgt = 40;
    cfg.src_length = 5;
    cfg.tgt_length = 4;
    cfg.decoder_layers = 2;
    cases.push_back({"nmt", models::build_nmt(cfg), 24, 4});
  }
  {
    models::ResNetConfig cfg;
    cfg.depth = 18;
    cfg.image_size = 32;
    cfg.classes = 10;
    cases.push_back({"resnet", models::build_resnet(cfg), 8, 2});
  }
  return cases;
}

struct ModeResult {
  double step_seconds = 0;
  std::size_t allocs_per_step = 0;
  std::size_t alloc_bytes_per_step = 0;
  std::size_t peak_bytes = 0;
  std::uint32_t loss_bits = 0;
  // Plan shape (planned mode only).
  std::size_t planned_tensors = 0;
  std::size_t aliases = 0;
  std::size_t slab_bytes = 0;
  std::size_t gross_bytes = 0;
  double reuse_fraction = 0;
};

ModeResult run_mode(const ModelCase& c, bool plan, conc::ThreadPool& pool, int reps) {
  rt::ExecutorOptions opt;
  opt.pool = &pool;
  opt.memory_plan = plan;
  rt::Executor ex(*c.spec.graph, c.spec.bind(c.hidden, c.batch), opt);
  ex.retain(c.spec.loss);
  ex.run_step();
  ex.run_step();  // steady state: weight grads + slab exist, GEMM scratch warm

  // Best-of-reps time and min-of-reps allocations: per-thread kernel
  // scratch (GEMM panels, im2col) grows monotonically, so a rep that lands
  // a big conv on a cold thread may still allocate — the min is the true
  // steady state.
  ModeResult res;
  double best = 1e300;
  res.allocs_per_step = static_cast<std::size_t>(-1);
  for (int r = 0; r < 1 + reps; ++r) {
    const std::size_t count0 = rt::aligned_alloc_count();
    const std::size_t bytes0 = rt::aligned_alloc_bytes();
    const auto t0 = Clock::now();
    const rt::ProfileReport report = ex.run_step();
    best = std::min(best, seconds_since(t0));
    if (rt::aligned_alloc_count() - count0 < res.allocs_per_step) {
      res.allocs_per_step = rt::aligned_alloc_count() - count0;
      res.alloc_bytes_per_step = rt::aligned_alloc_bytes() - bytes0;
    }
    res.peak_bytes = report.peak_allocated_bytes;
  }
  res.step_seconds = best;
  std::memcpy(&res.loss_bits, ex.value(c.spec.loss).fdata(), sizeof(float));
  if (const rt::MemoryPlan* p = ex.memory_plan()) {
    res.planned_tensors = p->tensors.size();
    res.aliases = p->alias_count;
    res.slab_bytes = p->slab_bytes;
    res.gross_bytes = p->gross_bytes;
    res.reuse_fraction = p->reuse_fraction();
  }
  return res;
}

struct CaseResult {
  std::string name;
  std::size_t ops = 0;
  ModeResult heap;
  ModeResult planned;
  bool allocs_o1 = false;
  bool loss_bitwise = false;
  bool peak_ok = false;
};

void write_json(const std::string& path, std::size_t threads,
                const std::vector<CaseResult>& results) {
  std::ofstream os(path);
  os << "{\n  \"threads\": " << threads << ",\n  \"models\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    auto mode = [&](const ModeResult& m) {
      os << "{\"step_seconds\": " << m.step_seconds
         << ", \"allocs_per_step\": " << m.allocs_per_step
         << ", \"alloc_bytes_per_step\": " << m.alloc_bytes_per_step
         << ", \"peak_bytes\": " << m.peak_bytes << "}";
    };
    os << "    {\"name\": \"" << r.name << "\", \"ops\": " << r.ops
       << ", \"planned_tensors\": " << r.planned.planned_tensors
       << ", \"aliases\": " << r.planned.aliases
       << ", \"slab_bytes\": " << r.planned.slab_bytes
       << ", \"gross_bytes\": " << r.planned.gross_bytes
       << ", \"reuse_fraction\": " << r.planned.reuse_fraction << ",\n     \"heap\": ";
    mode(r.heap);
    os << ",\n     \"planned\": ";
    mode(r.planned);
    os << ",\n     \"step_speedup\": "
       << (r.planned.step_seconds > 0 ? r.heap.step_seconds / r.planned.step_seconds
                                      : 0.0)
       << ", \"allocs_o1\": " << (r.allocs_o1 ? "true" : "false")
       << ", \"loss_bitwise_match\": " << (r.loss_bitwise ? "true" : "false")
       << ", \"peak_within_footprint\": " << (r.peak_ok ? "true" : "false") << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t threads = 8;
  std::string out_path = "BENCH_memplan.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: memplan_bench [--smoke] [--threads N] [--out PATH]\n";
      return 2;
    }
  }

  conc::ThreadPool pool(threads);
  const int reps = smoke ? 1 : 3;

  std::vector<CaseResult> results;
  util::Table table({"model", "ops", "slab", "reuse", "heap allocs/step",
                     "plan allocs/step", "heap step", "plan step", "checks"});
  bool ok = true;
  for (ModelCase& c : bench_models(smoke)) {
    CaseResult r;
    r.name = c.name;
    r.ops = c.spec.graph->num_ops();
    r.heap = run_mode(c, /*plan=*/false, pool, reps);
    r.planned = run_mode(c, /*plan=*/true, pool, reps);

    // Identical step counts + deterministic kernels: the two paths must
    // agree on the loss to the bit, the planned path must hit the heap at
    // most O(1) times per step, and packing the slab must not cost more
    // arena than per-op liveness freeing (modulo alignment padding).
    r.allocs_o1 = r.planned.allocs_per_step <= 2 &&
                  r.heap.allocs_per_step > r.planned.allocs_per_step;
    r.loss_bitwise = r.heap.loss_bits == r.planned.loss_bits;
    r.peak_ok = r.planned.peak_bytes <=
                r.heap.peak_bytes + rt::kTensorAlignment * r.planned.planned_tensors;
    ok = ok && r.allocs_o1 && r.loss_bitwise && r.peak_ok;

    table.add_row(
        {r.name, std::to_string(r.ops),
         util::format_bytes(static_cast<double>(r.planned.slab_bytes)),
         util::format_percent(r.planned.reuse_fraction),
         std::to_string(r.heap.allocs_per_step),
         std::to_string(r.planned.allocs_per_step),
         util::format_duration(r.heap.step_seconds, 3),
         util::format_duration(r.planned.step_seconds, 3),
         r.allocs_o1 && r.loss_bitwise && r.peak_ok ? "ok" : "FAIL"});
    results.push_back(r);
  }

  std::cout << "== static memory plan vs per-op heap (threads=" << threads << ") ==\n";
  table.print(std::cout);
  write_json(out_path, threads, results);
  std::cout << "wrote " << out_path << "\n";
  if (!ok) {
    std::cerr << "memplan_bench: O(1)-allocation / bitwise / peak check FAILED\n";
    return 1;
  }
  return 0;
}

// Graph-fusion benchmark: unfused execution vs the fused rewrite
// (src/ir/fusion.h) on the paper's models at toy sizes.
//
// For each model the same training step runs twice — fuse off (the seed
// behavior) and on (pointwise chains collapsed, GEMM epilogues folded) —
// and the bench reports, as a console table and BENCH_fusion.json:
//
//   - ops before/after, groups and epilogues formed
//   - measured bytes per step, the symbolic bytes of the executed graph,
//     and the resulting arithmetic intensity (FLOPs / byte)
//   - best-of-reps step wall time, and a bitwise loss comparison
//
// Hard failures (nonzero exit): loss bits differing between the paths,
// fused intensity below unfused (the rewrite's whole point is raising
// FLOPs per byte), measured fused bytes not matching the fused graph's
// symbolic bytes_accessed, or the fused memory-plan slab exceeding the
// unfused slab. Step-time deltas are emitted for the perf trajectory but
// not gated — wall-clock gates flake in CI.
//
// Flags: --smoke (2 models, 1 rep — CI), --threads N, --out PATH.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/concurrency/thread_pool.h"
#include "src/ir/graph.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"
#include "src/runtime/memplan.h"
#include "src/util/format.h"
#include "src/util/table.h"

namespace {

using namespace gf;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string ratio_str(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", r);
  return buf;
}

struct ModelCase {
  std::string name;
  models::ModelSpec spec;
  double hidden;
  double batch;
};

std::vector<ModelCase> bench_models(bool smoke) {
  std::vector<ModelCase> cases;
  {
    models::WordLmConfig cfg;
    cfg.vocab = 60;
    cfg.seq_length = 6;
    cfg.layers = 2;
    cases.push_back({"word_lm", models::build_word_lm(cfg), smoke ? 8.0 : 24.0,
                     smoke ? 2.0 : 4.0});
  }
  {
    models::ResNetConfig cfg;
    cfg.depth = 18;
    cfg.image_size = 32;
    cfg.classes = 10;
    cases.push_back({"resnet", models::build_resnet(cfg), 8, 2});
  }
  if (smoke) return cases;
  {
    models::TransformerLmConfig cfg;
    cfg.vocab = 60;
    cfg.layers = 2;
    cfg.seq_length = 8;
    cases.push_back({"transformer_lm", models::build_transformer_lm(cfg), 24, 4});
  }
  {
    models::NmtConfig cfg;
    cfg.vocab_src = 40;
    cfg.vocab_tgt = 40;
    cfg.src_length = 5;
    cfg.tgt_length = 4;
    cfg.decoder_layers = 2;
    cases.push_back({"nmt", models::build_nmt(cfg), 24, 4});
  }
  return cases;
}

struct ModeResult {
  double step_seconds = 0;
  double measured_flops = 0;
  double measured_bytes = 0;
  double symbolic_bytes = 0;  // of the executed graph
  std::size_t ops = 0;
  std::size_t peak_bytes = 0;
  std::size_t slab_bytes = 0;
  std::uint32_t loss_bits = 0;
  // Rewrite stats (fused mode only).
  std::size_t pointwise_groups = 0;
  std::size_t gemm_epilogues = 0;
  std::size_t ops_removed = 0;

  double intensity() const {
    return measured_bytes > 0 ? measured_flops / measured_bytes : 0;
  }
};

ModeResult run_mode(const ModelCase& c, bool fuse, conc::ThreadPool& pool, int reps) {
  const sym::Bindings bind = c.spec.bind(c.hidden, c.batch);
  rt::ExecutorOptions opt;
  opt.pool = &pool;
  opt.fuse = fuse;
  // Plan in both modes so the slab comparison is apples to apples.
  opt.memory_plan = true;
  rt::Executor ex(*c.spec.graph, bind, opt);
  ex.retain(c.spec.loss);
  ex.run_step();
  ex.run_step();  // steady state: weight grads + slab exist, GEMM scratch warm

  ModeResult res;
  double best = 1e300;
  for (int r = 0; r < 1 + reps; ++r) {
    const auto t0 = Clock::now();
    const rt::ProfileReport report = ex.run_step();
    best = std::min(best, seconds_since(t0));
    res.measured_flops = report.total_flops;
    res.measured_bytes = report.total_bytes;
    res.peak_bytes = report.peak_allocated_bytes;
  }
  res.step_seconds = best;
  res.ops = ex.executing_graph().num_ops();
  res.symbolic_bytes = ex.executing_graph().total_bytes_accessed().eval(bind);
  if (const rt::MemoryPlan* p = ex.memory_plan()) res.slab_bytes = p->slab_bytes;
  if (const ir::FusionResult* f = ex.fusion_result()) {
    res.pointwise_groups = f->pointwise_groups;
    res.gemm_epilogues = f->gemm_epilogues;
    res.ops_removed = f->ops_removed;
  }
  std::memcpy(&res.loss_bits, ex.value(c.spec.loss).fdata(), sizeof(float));
  return res;
}

struct CaseResult {
  std::string name;
  ModeResult unfused;
  ModeResult fused;
  bool loss_bitwise = false;
  bool intensity_up = false;
  bool bytes_match_symbolic = false;
  bool slab_ok = false;

  bool ok() const {
    return loss_bitwise && intensity_up && bytes_match_symbolic && slab_ok;
  }
};

void write_json(const std::string& path, std::size_t threads,
                const std::vector<CaseResult>& results) {
  std::ofstream os(path);
  os << "{\n  \"threads\": " << threads << ",\n  \"models\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    auto mode = [&](const ModeResult& m) {
      os << "{\"step_seconds\": " << m.step_seconds << ", \"ops\": " << m.ops
         << ", \"measured_bytes\": " << m.measured_bytes
         << ", \"symbolic_bytes\": " << m.symbolic_bytes
         << ", \"intensity_flops_per_byte\": " << m.intensity()
         << ", \"slab_bytes\": " << m.slab_bytes << "}";
    };
    os << "    {\"name\": \"" << r.name << "\", \"pointwise_groups\": "
       << r.fused.pointwise_groups << ", \"gemm_epilogues\": "
       << r.fused.gemm_epilogues << ", \"ops_removed\": " << r.fused.ops_removed
       << ",\n     \"unfused\": ";
    mode(r.unfused);
    os << ",\n     \"fused\": ";
    mode(r.fused);
    os << ",\n     \"bytes_reduction\": "
       << (r.unfused.measured_bytes > 0
               ? 1.0 - r.fused.measured_bytes / r.unfused.measured_bytes
               : 0.0)
       << ", \"step_speedup\": "
       << (r.fused.step_seconds > 0 ? r.unfused.step_seconds / r.fused.step_seconds
                                    : 0.0)
       << ", \"loss_bitwise_match\": " << (r.loss_bitwise ? "true" : "false")
       << ", \"intensity_increased\": " << (r.intensity_up ? "true" : "false")
       << ", \"measured_matches_symbolic\": "
       << (r.bytes_match_symbolic ? "true" : "false")
       << ", \"fused_slab_not_larger\": " << (r.slab_ok ? "true" : "false") << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t threads = 8;
  std::string out_path = "BENCH_fusion.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: fusion_bench [--smoke] [--threads N] [--out PATH]\n";
      return 2;
    }
  }

  conc::ThreadPool pool(threads);
  const int reps = smoke ? 1 : 3;

  std::vector<CaseResult> results;
  util::Table table({"model", "ops", "fused ops", "groups", "epilogues",
                     "bytes/step", "fused bytes", "intensity x", "step x", "checks"});
  bool ok = true;
  for (ModelCase& c : bench_models(smoke)) {
    CaseResult r;
    r.name = c.name;
    r.unfused = run_mode(c, /*fuse=*/false, pool, reps);
    r.fused = run_mode(c, /*fuse=*/true, pool, reps);

    // Identical step counts + id-keyed RNG streams: the rewrite must be
    // numerically invisible (bitwise), strictly raise FLOPs per byte,
    // keep measured traffic on the fused graph's symbolic formula, and
    // never cost slab bytes.
    r.loss_bitwise = r.unfused.loss_bits == r.fused.loss_bits;
    r.intensity_up = r.fused.intensity() > r.unfused.intensity();
    r.bytes_match_symbolic =
        std::fabs(r.fused.measured_bytes - r.fused.symbolic_bytes) <=
        1e-6 * r.fused.symbolic_bytes;
    r.slab_ok = r.fused.slab_bytes <= r.unfused.slab_bytes;
    ok = ok && r.ok();

    table.add_row(
        {r.name, std::to_string(r.unfused.ops), std::to_string(r.fused.ops),
         std::to_string(r.fused.pointwise_groups),
         std::to_string(r.fused.gemm_epilogues),
         util::format_bytes(r.unfused.measured_bytes),
         util::format_bytes(r.fused.measured_bytes),
         ratio_str(r.unfused.intensity() > 0
                                ? r.fused.intensity() / r.unfused.intensity()
                                : 0.0),
         ratio_str(r.fused.step_seconds > 0
                                ? r.unfused.step_seconds / r.fused.step_seconds
                                : 0.0),
         r.ok() ? "ok" : "FAIL"});
    results.push_back(r);
  }

  std::cout << "== graph fusion vs unfused (threads=" << threads << ") ==\n";
  table.print(std::cout);
  write_json(out_path, threads, results);
  std::cout << "wrote " << out_path << "\n";
  if (!ok) {
    std::cerr << "fusion_bench: bitwise / intensity / symbolic-bytes / slab "
                 "check FAILED\n";
    return 1;
  }
  return 0;
}

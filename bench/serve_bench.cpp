// Sustained-throughput benchmark for the analysis service (gfctl serve).
//
// A load generator replays a mixed request stream — characterize (explicit
// width and params-solve), sweep, and memplan over the built-in model
// families — against one AnalysisService from N concurrent client
// threads, in phases:
//
//   cold   first pass: every stage executes (build, count, solve, ...)
//   warm   repeated passes over the identical stream: pure cache lookups
//
// and reports sustained req/s plus p50/p99 latency per phase, the cache
// hit rate, and per-stage execution counts, as a console table and
// BENCH_serve.json.
//
// Hard failures (nonzero exit):
//   - warm-cache throughput < 5x cold (the content-addressed cache is the
//     perf core; if lookups are not at least that far ahead of recompute,
//     it is broken)
//   - any response differing from the cold pass's response for the same
//     request line (byte-identical across cache temperature and client
//     interleaving)
//   - any stage re-executing during warm passes (immutable-once-published:
//     repeated requests must hit, never recompute)
//   - the run_server byte stream differing between 1 and N worker threads
//     for the same input (ordered-output determinism)
//
// Flags: --smoke (2 families, fewer passes — CI), --threads N, --out PATH.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/stages.h"
#include "src/concurrency/thread_pool.h"
#include "src/serve/cache.h"
#include "src/serve/json.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/util/table.h"

namespace {

using namespace gf;
using Clock = std::chrono::steady_clock;

/// The unique request lines of one replay pass: a characterize / solve /
/// sweep / memplan mix per family. Deliberately no "stats" requests —
/// those report live gauges and would (correctly) differ between runs.
std::vector<std::string> build_request_stream(const std::vector<std::string>& families) {
  std::vector<std::string> lines;
  for (const std::string& family : families) {
    {
      serve::Json req = serve::Json::object();
      req.set("kind", serve::Json("characterize"));
      req.set("model", serve::Json(family));
      req.set("hidden", serve::Json(256.0));
      req.set("batch", serve::Json(32.0));
      lines.push_back(req.dump());
    }
    {
      serve::Json req = serve::Json::object();
      req.set("kind", serve::Json("characterize"));
      req.set("model", serve::Json(family));
      req.set("params", serve::Json(2.0e7));  // width solved from target
      req.set("batch", serve::Json(32.0));
      lines.push_back(req.dump());
    }
    {
      serve::Json req = serve::Json::object();
      req.set("kind", serve::Json("sweep"));
      req.set("model", serve::Json(family));
      serve::Json hiddens = serve::Json::array();
      for (double h : {128.0, 256.0, 512.0}) hiddens.push_back(serve::Json(h));
      req.set("hidden", hiddens);
      req.set("batch", serve::Json(32.0));
      lines.push_back(req.dump());
    }
    {
      serve::Json req = serve::Json::object();
      req.set("kind", serve::Json("memplan"));
      req.set("model", serve::Json(family));
      req.set("hidden", serve::Json(128.0));
      req.set("batch", serve::Json(8.0));
      lines.push_back(req.dump());
    }
  }
  return lines;
}

struct PhaseResult {
  double seconds = 0;
  std::size_t requests = 0;
  std::vector<double> latencies;  // seconds, one per request

  double rps() const { return seconds > 0 ? requests / seconds : 0; }
  double percentile(double p) const {
    if (latencies.empty()) return 0;
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
    return sorted[idx];
  }
};

/// Replays `lines` x `passes` from `clients` threads (strided split).
/// On the first-ever pass, records each line's response into `expected`;
/// afterwards any response that is not byte-identical to the recorded one
/// bumps `mismatches`.
PhaseResult run_phase(serve::AnalysisService& service, const std::vector<std::string>& lines,
                      int passes, std::size_t clients, std::vector<std::string>& expected,
                      std::size_t& mismatches) {
  const bool record = expected.empty();
  if (record) expected.resize(lines.size());
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::size_t> bad(clients, 0);

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      for (int pass = 0; pass < passes; ++pass)
        for (std::size_t i = c; i < lines.size(); i += clients) {
          const auto r0 = Clock::now();
          const std::string response = service.handle(lines[i]);
          lat[c].push_back(std::chrono::duration<double>(Clock::now() - r0).count());
          if (record && pass == 0) {
            expected[i] = response;  // each line has exactly one recorder
          } else if (response != expected[i]) {
            ++bad[c];
          }
        }
    });
  for (auto& t : threads) t.join();

  PhaseResult res;
  res.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  for (std::size_t c = 0; c < clients; ++c) {
    res.latencies.insert(res.latencies.end(), lat[c].begin(), lat[c].end());
    mismatches += bad[c];
  }
  res.requests = res.latencies.size();
  return res;
}

/// Feeds the stream through the ordered-output server loop and returns
/// the response byte stream.
std::string run_stream(serve::AnalysisService& service, const std::vector<std::string>& lines,
                       std::size_t threads) {
  std::ostringstream input;
  for (const std::string& line : lines) input << line << "\n";
  conc::ThreadPool pool(threads);
  std::istringstream in(input.str());
  std::ostringstream out;
  serve::run_server(in, out, service, pool);
  return out.str();
}

std::string ms_str(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e3);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t threads = 8;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: serve_bench [--smoke] [--threads N] [--out PATH]\n";
      return 2;
    }
  }

  std::vector<std::string> families = analysis::stages::builtin_families();
  if (smoke) families.resize(2);  // wordlm + charlm keep CI wall-clock sane
  const int warm_passes = smoke ? 8 : 40;

  const std::vector<std::string> lines = build_request_stream(families);
  conc::ThreadPool pool(threads);
  serve::AnalysisService service(pool);

  std::vector<std::string> expected;
  std::size_t mismatches = 0;
  const PhaseResult cold = run_phase(service, lines, 1, threads, expected, mismatches);
  const serve::StageCacheStats after_cold = service.cache_stats();
  const PhaseResult warm =
      run_phase(service, lines, warm_passes, threads, expected, mismatches);
  const serve::StageCacheStats after_warm = service.cache_stats();

  // Ordered-output determinism: same input stream, 1 worker vs N workers,
  // must produce the same bytes (the service is already warm, so this
  // costs lookups only).
  const std::string stream_one = run_stream(service, lines, 1);
  const std::string stream_many = run_stream(service, lines, threads);

  const double speedup = cold.rps() > 0 ? warm.rps() / cold.rps() : 0;
  const bool gate_speedup = speedup >= 5.0;
  const bool gate_identical = mismatches == 0;
  const bool gate_no_reexec = after_warm.executions == after_cold.executions;
  const bool gate_stream = stream_one == stream_many;
  const bool ok = gate_speedup && gate_identical && gate_no_reexec && gate_stream;

  std::cout << "== serve sustained throughput (threads=" << threads
            << ", families=" << families.size() << ", reqs/pass=" << lines.size()
            << ") ==\n";
  util::Table table({"phase", "requests", "seconds", "req/s", "p50 ms", "p99 ms"});
  auto add_phase = [&](const char* name, const PhaseResult& p) {
    char rps[32], secs[32];
    std::snprintf(rps, sizeof rps, "%.1f", p.rps());
    std::snprintf(secs, sizeof secs, "%.3f", p.seconds);
    table.add_row({name, std::to_string(p.requests), secs, rps,
                   ms_str(p.percentile(0.50)), ms_str(p.percentile(0.99))});
  };
  add_phase("cold", cold);
  add_phase("warm", warm);
  table.print(std::cout);

  char speedup_str[32];
  std::snprintf(speedup_str, sizeof speedup_str, "%.1f", speedup);
  std::cout << "warm/cold throughput: " << speedup_str << "x (gate >= 5x)\n"
            << "cache: " << after_warm.entries << " entries, "
            << after_warm.executions << " executions, " << after_warm.hits
            << " hits\n"
            << "response mismatches: " << mismatches
            << ", warm re-executions: " << (after_warm.executions - after_cold.executions)
            << ", stream 1-vs-" << threads << " threads: "
            << (gate_stream ? "identical" : "DIFFER") << "\n";

  std::ofstream os(out_path);
  os << "{\n  \"threads\": " << threads << ",\n  \"families\": " << families.size()
     << ",\n  \"requests_per_pass\": " << lines.size() << ",\n";
  auto phase_json = [&](const char* name, const PhaseResult& p) {
    os << "  \"" << name << "\": {\"requests\": " << p.requests
       << ", \"seconds\": " << p.seconds << ", \"rps\": " << p.rps()
       << ", \"p50_ms\": " << p.percentile(0.50) * 1e3
       << ", \"p99_ms\": " << p.percentile(0.99) * 1e3 << "}";
  };
  phase_json("cold", cold);
  os << ",\n";
  phase_json("warm", warm);
  os << ",\n  \"cache\": {\"entries\": " << after_warm.entries
     << ", \"executions\": " << after_warm.executions << ", \"hits\": " << after_warm.hits
     << ", \"hit_rate\": " << after_warm.hit_rate() << ", \"stages\": [";
  for (std::size_t i = 0; i < after_warm.stages.size(); ++i) {
    const auto& s = after_warm.stages[i];
    os << (i ? ", " : "") << "{\"stage\": \"" << s.stage << "\", \"hits\": " << s.hits
       << ", \"executions\": " << s.executions << "}";
  }
  os << "]},\n  \"gates\": {\"warm_speedup\": " << speedup
     << ", \"warm_speedup_ok\": " << (gate_speedup ? "true" : "false")
     << ", \"responses_identical\": " << (gate_identical ? "true" : "false")
     << ", \"zero_warm_reexecutions\": " << (gate_no_reexec ? "true" : "false")
     << ", \"stream_thread_invariant\": " << (gate_stream ? "true" : "false")
     << "},\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (!ok) {
    std::cerr << "serve_bench: throughput / determinism / re-execution gate FAILED\n";
    return 1;
  }
  return 0;
}

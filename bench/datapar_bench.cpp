// Data-parallel execution benchmark: the shared-memory ring allreduce
// (src/runtime/datapar.h) measured against the §6 analytic model
// (src/plan/allreduce.h) on the toy word LM.
//
// Three hard gates (nonzero exit on failure):
//
//   1. Bitwise worker-count independence: the step-loss bit pattern of
//      every step must be identical for N ∈ {1, 2, 4, 8} (smoke: {1, 2, 4})
//      — the runner's fixed-tree reduction contract, end to end.
//   2. Analytic cross-check: total measured ring time (overlap off, so
//      communication is unpolluted by compute skew) must lie within
//      kCommTolerance of the Patarasuk–Yuan prediction summed per bucket,
//      with α calibrated from a measured N-thread barrier crossing and β
//      from a measured large-copy bandwidth, derated by min(N, cores)/N:
//      a shared-memory ring on C cores can only move min(N, C) chunks
//      concurrently, so on an oversubscribed box the copies serialize and
//      the effective per-link bandwidth drops accordingly. Payloads are
//      sized MB-scale so this β term dominates and scheduler noise in the
//      barrier waits (tens of µs per crossing when workers oversubscribe
//      cores) stays second-order. The tolerance is wide but two-sided: it
//      catches both a broken ring that stops moving bytes and pathological
//      serialization beyond what core count explains.
//   3. Stragglers degrade no worse than the analytic bound: with seeded
//      lognormal delays injected, step time must stay within
//      kStragglerSlack of (clean step + max over workers of its summed
//      delays) — synchronous SGD pays the max, not the mean (§6.3).
//
// Also reported (not gated — wall-clock scaling flakes on shared CI
// boxes): per-bucket achieved ring bandwidth, overlap-on step time, and
// the measured-vs-predicted ratio per worker count in BENCH_datapar.json.
//
// Flags: --smoke (smaller model, fewer reps — CI), --threads N (pool
// threads per worker), --out PATH.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/models/models.h"
#include "src/plan/allreduce.h"
#include "src/runtime/datapar.h"
#include "src/util/format.h"
#include "src/util/table.h"

namespace {

using namespace gf;

constexpr int kGradShards = 8;
constexpr double kCommTolerance = 8.0;   // measured/predicted must be in [1/8, 8]
constexpr double kStragglerSlack = 1.6;  // measured <= slack * (clean + bound) + 25ms

std::uint32_t bits_of(float f) {
  std::uint32_t u = 0;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

struct BucketRow {
  std::size_t payload_bytes = 0;
  double ring_seconds = 0;
  double bandwidth = 0;
};

struct RunResult {
  int workers = 0;
  double step_seconds = 0;          // best-of-reps wall time, overlap off
  double overlap_step_seconds = 0;  // best-of-reps wall time, overlap on
  double comm_seconds = 0;          // per-bucket ring time summed, at the best step
  double predicted_comm_seconds = 0;
  double barrier_seconds = 0;
  std::vector<std::uint32_t> loss_bits;  // one per step, priming included
  std::vector<BucketRow> buckets;
};

RunResult run_config(const models::ModelSpec& spec, const sym::Bindings& bind,
                     int workers, std::size_t threads, std::size_t bucket_bytes,
                     int reps, bool overlap, double straggler_sigma,
                     double straggler_scale,
                     double* predicted_delay_bound = nullptr) {
  rt::DataParallelOptions opt;
  opt.workers = workers;
  opt.grad_shards = kGradShards;
  opt.bucket_bytes = bucket_bytes;
  opt.threads_per_worker = threads;
  opt.overlap = overlap;
  opt.straggler_sigma = straggler_sigma;
  opt.straggler_scale_seconds = straggler_scale;
  rt::DataParallelRunner runner(*spec.graph, spec.loss, bind, opt);

  if (predicted_delay_bound != nullptr) {
    double bound = 0;
    for (int w = 0; w < workers; ++w) {
      double sum = 0;
      for (int m = 0; m < runner.micro_steps(); ++m) sum += runner.straggler_delay(w, m);
      bound = std::max(bound, sum);
    }
    *predicted_delay_bound = bound;
  }

  RunResult res;
  res.workers = workers;
  res.step_seconds = 1e300;
  for (int s = 0; s < 1 + reps; ++s) {  // step 0 primes (overlap off internally)
    const rt::DataParallelStepResult step = runner.step();
    res.loss_bits.push_back(bits_of(step.loss));
    if (s == 0) continue;  // priming step: cold arenas, no overlap — not timed
    res.step_seconds = std::min(res.step_seconds, step.wall_seconds);
    // Per-bucket best across steps: the ring does identical work every
    // step, so the minimum is the cleanest observation of its data
    // movement and the standard way to shed scheduler noise.
    if (res.buckets.empty()) res.buckets.resize(step.buckets.size());
    for (std::size_t b = 0; b < step.buckets.size(); ++b) {
      const rt::BucketStats& bs = step.buckets[b];
      BucketRow& row = res.buckets[b];
      if (row.payload_bytes == 0 || bs.ring_seconds() < row.ring_seconds)
        row = {bs.payload_bytes, bs.ring_seconds(), bs.bandwidth(workers)};
    }
  }
  for (const BucketRow& b : res.buckets) res.comm_seconds += b.ring_seconds;
  return res;
}

void write_json(const std::string& path, std::size_t threads, double copy_bandwidth,
                const std::vector<RunResult>& runs, bool bits_ok, bool comm_ok,
                double straggler_clean, double straggler_bound, double straggler_measured,
                bool straggler_ok) {
  std::ofstream os(path);
  os << "{\n  \"threads_per_worker\": " << threads
     << ",\n  \"grad_shards\": " << kGradShards
     << ",\n  \"copy_bandwidth_bytes_per_s\": " << copy_bandwidth
     << ",\n  \"comm_tolerance\": " << kCommTolerance
     << ",\n  \"loss_bitwise_match\": " << (bits_ok ? "true" : "false")
     << ",\n  \"comm_within_tolerance\": " << (comm_ok ? "true" : "false")
     << ",\n  \"workers\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    os << "    {\"workers\": " << r.workers << ", \"step_seconds\": " << r.step_seconds
       << ", \"overlap_step_seconds\": " << r.overlap_step_seconds
       << ", \"comm_seconds\": " << r.comm_seconds
       << ", \"predicted_comm_seconds\": " << r.predicted_comm_seconds
       << ", \"comm_ratio\": "
       << (r.predicted_comm_seconds > 0 ? r.comm_seconds / r.predicted_comm_seconds : 0.0)
       << ", \"barrier_seconds\": " << r.barrier_seconds << ",\n     \"buckets\": [";
    for (std::size_t b = 0; b < r.buckets.size(); ++b)
      os << (b ? ", " : "") << "{\"payload_bytes\": " << r.buckets[b].payload_bytes
         << ", \"ring_seconds\": " << r.buckets[b].ring_seconds
         << ", \"bandwidth_bytes_per_s\": " << r.buckets[b].bandwidth << "}";
    os << "]}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"straggler\": {\"clean_step_seconds\": " << straggler_clean
     << ", \"predicted_extra_seconds\": " << straggler_bound
     << ", \"measured_step_seconds\": " << straggler_measured
     << ", \"slack\": " << kStragglerSlack
     << ", \"within_bound\": " << (straggler_ok ? "true" : "false") << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t threads = 2;
  std::string out_path = "BENCH_datapar.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: datapar_bench [--smoke] [--threads N] [--out PATH]\n";
      return 2;
    }
  }

  // MB-scale gradients on purpose: the comm gate compares measured ring time
  // to an α-β prediction, and the bytes-moved β term is only trustworthy when
  // it dominates the per-crossing scheduler noise absorbed by the barriers.
  models::WordLmConfig cfg;
  cfg.vocab = smoke ? 2000 : 4000;
  cfg.seq_length = smoke ? 6 : 10;
  cfg.layers = 2;
  const models::ModelSpec spec = models::build_word_lm(cfg);
  const double hidden = smoke ? 128.0 : 256.0;
  const double global_batch = smoke ? 16.0 : 32.0;  // kGradShards | batch
  const sym::Bindings bind = spec.bind(hidden, global_batch);
  const std::size_t bucket_bytes = std::size_t{smoke ? 2u : 4u} << 20;
  const int reps = smoke ? 2 : 4;
  const std::vector<int> worker_counts = smoke ? std::vector<int>{1, 2, 4}
                                               : std::vector<int>{1, 2, 4, 8};

  std::cout << "== shared-memory ring allreduce vs the analytic model (word_lm, "
            << "S=" << kGradShards << ", threads/worker=" << threads << ") ==\n";
  const double copy_bw = rt::measure_copy_bandwidth();
  std::cout << "calibrated copy bandwidth: "
            << util::format_bytes(copy_bw) << "/s\n\n";

  const unsigned hw_cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<RunResult> runs;
  for (int n : worker_counts) {
    RunResult r = run_config(spec, bind, n, threads, bucket_bytes, reps,
                             /*overlap=*/false, 0, 0);
    r.overlap_step_seconds = run_config(spec, bind, n, threads, bucket_bytes, reps,
                                        /*overlap=*/true, 0, 0)
                                 .step_seconds;
    if (n > 1) {
      r.barrier_seconds = rt::measure_barrier_seconds(n);
      // The runner's ring: α is one barrier crossing (its stand-in for hop
      // latency), β the measured copy bandwidth derated by min(N, cores)/N —
      // a shared-memory ring has min(N, cores) links that can actually move
      // bytes at once, so with workers oversubscribing cores the per-step
      // chunk copies serialize and each logical link runs N/min(N, cores)
      // times slower.
      plan::AllReduceModel model;
      const double links = std::min<double>(n, hw_cores);
      model.link_bandwidth = copy_bw * links / n;
      model.hop_latency = r.barrier_seconds;
      for (const BucketRow& b : r.buckets)
        r.predicted_comm_seconds +=
            plan::ring_allreduce_cost(model, static_cast<double>(b.payload_bytes), n)
                .seconds();
    }
    runs.push_back(std::move(r));
  }

  // Gate 1: every worker count produced the same loss bits at every step.
  bool bits_ok = true;
  for (const RunResult& r : runs)
    if (r.loss_bits != runs.front().loss_bits) bits_ok = false;

  // Gate 2: measured ring time within tolerance of the calibrated model.
  bool comm_ok = true;
  for (const RunResult& r : runs) {
    if (r.workers == 1 || r.predicted_comm_seconds <= 0) continue;
    const double ratio = r.comm_seconds / r.predicted_comm_seconds;
    if (ratio > kCommTolerance || ratio < 1.0 / kCommTolerance) comm_ok = false;
  }

  // Gate 3: stragglers cost at most the analytic max-over-workers bound
  // (with slack): run the largest worker count with seeded jitter.
  const int max_n = worker_counts.back();
  double delay_bound = 0;
  const double straggler_scale = smoke ? 5e-3 : 1e-2;
  const RunResult jittered =
      run_config(spec, bind, max_n, threads, bucket_bytes, reps, /*overlap=*/false,
                 /*straggler_sigma=*/0.2, straggler_scale, &delay_bound);
  const double clean_step = runs.back().step_seconds;
  const bool straggler_ok =
      jittered.step_seconds <= kStragglerSlack * (clean_step + delay_bound) + 0.025;
  const bool straggler_bits_ok = jittered.loss_bits == runs.front().loss_bits;

  util::Table table({"workers", "step s", "overlap step s", "comm s", "PY predicted s",
                     "ratio", "ring GB/s", "speedup"});
  for (const RunResult& r : runs) {
    double bw = 0;
    for (const BucketRow& b : r.buckets) bw = std::max(bw, b.bandwidth);
    table.add_row({std::to_string(r.workers), util::format_duration(r.step_seconds, 3),
                   util::format_duration(r.overlap_step_seconds, 3),
                   util::format_duration(r.comm_seconds, 3),
                   r.workers > 1 ? util::format_duration(r.predicted_comm_seconds, 3)
                                 : std::string("-"),
                   r.predicted_comm_seconds > 0
                       ? util::format_sig(r.comm_seconds / r.predicted_comm_seconds, 3)
                       : std::string("-"),
                   util::format_sig(bw / 1e9, 3),
                   util::format_sig(runs.front().step_seconds / r.step_seconds, 3)});
  }
  table.print(std::cout);
  std::cout << "\nstraggler run (N=" << max_n << ", sigma=0.2): clean "
            << util::format_duration(clean_step, 3) << " + bound "
            << util::format_duration(delay_bound, 3) << " -> measured "
            << util::format_duration(jittered.step_seconds, 3)
            << (straggler_ok ? " (within bound)" : " (EXCEEDS bound)") << "\n";

  write_json(out_path, threads, copy_bw, runs, bits_ok && straggler_bits_ok, comm_ok,
             clean_step, delay_bound, jittered.step_seconds, straggler_ok);
  std::cout << "wrote " << out_path << "\n";

  if (!bits_ok || !straggler_bits_ok) {
    std::cerr << "datapar_bench: loss bits differ across worker counts FAILED\n";
    return 1;
  }
  if (!comm_ok) {
    std::cerr << "datapar_bench: measured ring time outside " << kCommTolerance
              << "x of the calibrated Patarasuk-Yuan prediction FAILED\n";
    return 1;
  }
  if (!straggler_ok) {
    std::cerr << "datapar_bench: straggler degradation exceeds the analytic bound FAILED\n";
    return 1;
  }
  return 0;
}

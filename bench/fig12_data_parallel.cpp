// Reproduces Figure 12: data-parallel worker count vs per-epoch training
// time and algorithmic FLOP utilization for the projected word LM at
// subbatch 128 (synchronous SGD + ring allreduce over 56 GB/s links).
#include "bench/bench_common.h"
#include "src/plan/allreduce.h"
#include "src/plan/case_study.h"

int main() {
  using namespace gf;
  bench::banner("Figure 12", "data parallelism effect on run time and utilization");

  const auto accel = hw::AcceleratorConfig::v100_like();
  const plan::AllReduceModel network;
  const auto inputs = plan::paper_calibrated_case_study();

  plan::WorkerStep worker;
  worker.step_seconds = inputs.cache_step_seconds;
  worker.flops = inputs.flops_per_step;
  worker.subbatch = inputs.subbatch;
  worker.gradient_bytes = 4.0 * inputs.params;
  worker.samples_per_epoch = inputs.samples_per_epoch;

  util::Table table({"workers", "global batch", "comm s/step", "α latency s",
                     "β bandwidth s", "step s", "epoch days", "alg. FLOP util"});
  for (const auto& pt : plan::data_parallel_sweep(worker, accel, network, 16384)) {
    // The same α-β decomposition the runtime's datapar bench calibrates
    // against: 2(N-1) hop latencies plus 2(N-1)/N of the gradient bytes.
    const plan::AllReduceCost cost =
        plan::ring_allreduce_cost(network, worker.gradient_bytes, pt.workers);
    table.add_row({std::to_string(pt.workers), util::format_si(pt.global_batch, 0),
                   util::format_sig(pt.comm_seconds, 3),
                   util::format_sig(cost.latency_seconds, 3),
                   util::format_sig(cost.bandwidth_seconds, 3),
                   util::format_sig(pt.step_seconds, 4),
                   util::format_si(pt.epoch_days),
                   util::format_percent(pt.flop_utilization)});
  }
  bench::print_with_csv(table);

  const int for_week =
      plan::workers_for_epoch_days(worker, accel, network, 6.5, 16384);
  std::cout << "\nworkers needed for a <6.5-day epoch: " << for_week
            << " (paper: 1024 reaches 6.2 days at 34% utilization).\n"
            << "Utilization declines as the fixed ring-allreduce time is\n"
            << "amortized over an unchanged per-worker step — batch sizes past\n"
            << "32K-128K samples lean on the large-batch training literature.\n";
  return 0;
}

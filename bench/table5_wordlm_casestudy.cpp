// Reproduces Table 5: the §6 step-by-step process of training a frontier
// word LM — best-case Roofline, cache-hierarchy-aware correction, data
// parallelism (1024/512 workers), layer parallelism (4 stages), and
// embedding-table sharding. Runs both paper-calibrated inputs and inputs
// derived from this library's own projected word-LM graph.
#include "bench/bench_common.h"
#include "src/hw/cache_model.h"
#include "src/ir/footprint.h"
#include "src/models/word_lm.h"
#include "src/plan/case_study.h"

namespace {

using namespace gf;

void print_rows(const std::vector<plan::CaseStudyRow>& rows) {
  util::Table table({"Optimization stage", "Accel.", "Batch", "Mem/accel (GB)",
                     "Days/epoch", "Alg. FLOP util"});
  for (const auto& row : rows) {
    std::string mem;
    if (row.memory_per_accel_bytes.size() == 1) {
      mem = util::format_sig(row.memory_per_accel_bytes[0] / 1e9, 4);
    } else {
      mem = "{";
      for (std::size_t i = 0; i < row.memory_per_accel_bytes.size(); ++i) {
        if (i) mem += ", ";
        mem += util::format_sig(row.memory_per_accel_bytes[i] / 1e9, 3);
      }
      mem += "}";
    }
    table.add_row({row.stage, std::to_string(row.accelerators),
                   util::format_si(row.global_batch, 0), mem,
                   util::format_si(row.epoch_days),
                   util::format_percent(row.utilization)});
  }
  bench::print_with_csv(table);
}

/// Inputs derived from this library's own projected word LM: the §6.1
/// LSTM-projection + 800K-vocabulary variant solved to 23.8B parameters.
plan::CaseStudyInputs graph_derived_inputs(const hw::AcceleratorConfig& accel) {
  models::WordLmConfig cfg;
  cfg.vocab = 800000;
  cfg.projection = true;
  const auto spec = models::build_word_lm(cfg);
  const double params = 23.8e9;
  const double hidden = spec.hidden_for_params(params);
  const auto bind = spec.bind(hidden, 128);

  plan::CaseStudyInputs in;
  in.label = "graph-derived (this library's projected word LM)";
  in.params = params;
  in.subbatch = 128;
  in.samples_per_epoch = 77e9 / spec.samples_per_batch_row;  // 77B words

  const auto best = hw::best_case_step_time(*spec.graph, bind, accel);
  in.best_step_seconds = best.seconds();
  in.best_utilization = best.flop_utilization;
  const auto ca = hw::cache_aware_step_time(*spec.graph, bind, accel);
  in.cache_step_seconds = ca.step_seconds;
  in.cache_utilization = ca.flop_utilization;
  in.flops_per_step = ca.flops;
  in.total_footprint_bytes = ir::minimal_footprint(*spec.graph, bind).total_bytes;

  // Per-layer weight memory (weights + gradients) grouped by name prefix.
  // Embedding and vocabulary-projection tables are shardable (row/column
  // splits); the fused LSTM gate matrices stay whole.
  const std::vector<std::pair<std::string, bool>> groups = {
      {"embedding", true}, {"lstm0", false}, {"lstm1", false}, {"output", true}};
  for (const auto& [prefix, shardable] : groups) {
    double bytes = 0;
    for (const auto* w : spec.graph->weights())
      if (w->name().rfind(prefix, 0) == 0) bytes += w->bytes().eval(bind);
    in.layers.push_back({prefix, 2.0 * bytes, shardable});
  }
  return in;
}

}  // namespace

int main() {
  const auto accel = hw::AcceleratorConfig::v100_like();
  const plan::AllReduceModel network;

  bench::banner("Table 5", "word LM case study, paper-calibrated inputs");
  const auto calibrated = plan::paper_calibrated_case_study();
  std::cout << "inputs: " << calibrated.label << "\n";
  print_rows(plan::run_case_study(calibrated, accel, network));
  std::cout << "\nPaper row 2 note: Table 5 prints 4071 days/epoch but the body\n"
               "text says 4671; the utilization-consistent value (80/46 * 2707)\n"
               "is ~4708, which is what this model reproduces.\n";

  bench::banner("Table 5 (bis)", "word LM case study, graph-derived inputs");
  const auto derived = graph_derived_inputs(accel);
  std::cout << "inputs: " << derived.label << "\n";
  print_rows(plan::run_case_study(derived, accel, network));

  std::cout << "\nAblation: gradient compression (§6.2.3) on the 1024-worker step\n";
  {
    plan::WorkerStep w;
    w.step_seconds = calibrated.cache_step_seconds;
    w.flops = calibrated.flops_per_step;
    w.subbatch = calibrated.subbatch;
    w.samples_per_epoch = calibrated.samples_per_epoch;
    gf::util::Table t({"Gradient encoding", "Comm s/step", "Epoch days", "Util"});
    for (double bits : {32.0, 8.0, 2.0}) {
      w.gradient_bytes = plan::compressed_gradient_bytes(calibrated.params, bits);
      const auto pt = plan::evaluate_data_parallel(w, accel, network, 1024);
      t.add_row({gf::util::format_sig(bits, 2) + "-bit",
                 gf::util::format_sig(pt.comm_seconds, 3),
                 gf::util::format_sig(pt.epoch_days, 3),
                 gf::util::format_percent(pt.flop_utilization)});
    }
    bench::print_with_csv(t);
  }
  return 0;
}

// Verification harness: every analytic parallelism quantity used by
// Tables 3/5 and Figures 11/12 is re-derived by the discrete-event
// simulator and printed side by side. Where the analytic form is exact
// (ring allreduce, fused pipeline, homogeneous sync-SGD), the columns must
// agree to float precision — this bench is the evidence.
#include "bench/bench_common.h"
#include "src/plan/case_study.h"
#include "src/sim/schedules.h"

int main() {
  using namespace gf;
  bench::banner("Verification", "discrete-event simulation vs analytic models");

  util::Table table({"scenario", "analytic (s)", "simulated (s)", "rel. error"});
  auto row = [&](const std::string& name, double analytic, double simulated) {
    const double err = analytic > 0 ? std::abs(simulated - analytic) / analytic : 0;
    table.add_row({name, util::format_sig(analytic, 6), util::format_sig(simulated, 6),
                   util::format_sig(err, 2)});
  };

  // 1. Ring allreduce at Table 5 scale.
  const double grad_bytes = 4.0 * 23.8e9;
  for (int n : {16, 512, 1024}) {
    plan::AllReduceModel net;
    net.hop_latency = 0;
    row("ring allreduce, " + std::to_string(n) + " workers (95 GB)",
        plan::ring_allreduce_seconds(net, grad_bytes, n),
        sim::simulate_ring_allreduce(n, grad_bytes, net.link_bandwidth).makespan);
  }

  // 2. Synchronous data-parallel step (cache-aware compute + allreduce).
  {
    const auto inputs = plan::paper_calibrated_case_study();
    plan::AllReduceModel net;
    net.hop_latency = 0;
    for (int n : {512, 1024}) {
      sim::DataParallelSim cfg;
      cfg.worker_compute_seconds.assign(static_cast<std::size_t>(n),
                                        inputs.cache_step_seconds);
      cfg.gradient_bytes = grad_bytes;
      cfg.link_bandwidth = net.link_bandwidth;
      row("sync-SGD step, " + std::to_string(n) + " workers",
          inputs.cache_step_seconds +
              plan::ring_allreduce_seconds(net, grad_bytes, n),
          sim::simulate_data_parallel_step(cfg).makespan);
    }
  }

  // 3. Pipeline layer parallelism (Table 5's 4-stage, 2-microbatch plan).
  for (int u : {1, 2, 8}) {
    plan::PipelineModel analytic;
    analytic.stages = 4;
    analytic.microbatches = u;
    const auto lp = plan::layer_parallel_step(
        17.2, analytic,
        {{"a", 1, false}, {"b", 1, false}, {"c", 1, false}, {"d", 1, false}});
    sim::PipelineSim cfg;
    cfg.stage_seconds.assign(4, 17.2 / 4);
    cfg.microbatches = u;
    row("pipeline 4 stages, " + std::to_string(u) + " microbatches",
        lp.step_seconds, sim::simulate_pipeline(cfg).makespan);
  }

  // 4. Separate fwd/bwd waves vs the fused abstraction (balanced stages).
  {
    sim::PipelineSim cfg;
    cfg.stage_seconds.assign(4, 17.2 / 4);
    cfg.microbatches = 2;
    const double fused = sim::simulate_pipeline(cfg).makespan;
    cfg.separate_backward = true;
    row("pipeline: separate fwd/bwd waves (vs fused)", fused,
        sim::simulate_pipeline(cfg).makespan);
  }

  bench::print_with_csv(table);
  std::cout << "\nEvery relative error should print as 0 (exact agreement):\n"
               "the closed forms the reproduction relies on are not\n"
               "approximations of these schedules — they are their critical\n"
               "paths, and the event-driven execution confirms it.\n";
  return 0;
}

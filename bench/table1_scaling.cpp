// Reproduces Table 1: learning-curve and model-size scaling relationships,
// and the projected data/model scale needed to reach each domain's desired
// SOTA. Paper headline: datasets must grow 33-971x, models 6.6-456x.
#include "bench/bench_common.h"
#include "src/scaling/projection.h"
#include "src/util/format.h"

int main() {
  using namespace gf;
  bench::banner("Table 1", "learning curve & model size scaling per domain");

  util::Table table({"Domain (model)", "Current SOTA", "Desired SOTA", "Data samples",
                     "alpha", "beta_g", "sigma", "beta_p", "Data scale", "(paper)",
                     "Model scale", "(paper)"});
  for (const auto& d : scaling::domain_table()) {
    const auto p = scaling::project_frontier(d);
    table.add_row({models::domain_name(d.domain),
                   util::format_sig(d.current_sota_error) + " " + d.metric,
                   util::format_sig(d.desired_sota_error),
                   util::format_si(d.current_samples) + " " + d.sample_unit,
                   util::format_sig(d.curve.alpha), util::format_sig(d.curve.beta_g),
                   util::format_sig(d.size_curve.sigma),
                   util::format_sig(d.size_curve.beta_p),
                   util::format_scale(p.data_scale),
                   util::format_scale(d.paper_data_scale),
                   util::format_scale(p.model_scale),
                   util::format_scale(d.paper_model_scale)});
  }
  bench::print_with_csv(table);

  std::cout << "\nProjected absolute targets (sigma yields params in millions):\n";
  util::Table targets({"Domain (model)", "Target data", "Target params",
                       "(paper params)", "Target dataset size"});
  for (const auto& d : scaling::domain_table()) {
    const auto p = scaling::project_frontier(d);
    targets.add_row({models::domain_name(d.domain),
                     util::format_si(p.target_samples) + " " + d.sample_unit,
                     util::format_si(p.target_params),
                     util::format_si(d.paper_target_params),
                     util::format_bytes(p.target_dataset_gb * 1e9)});
  }
  bench::print_with_csv(targets);

  std::cout << "\nNote: char-LM and speech rows deviate from the paper's printed\n"
               "scales because the paper's own alpha/beta_g/sigma constants are\n"
               "inconsistent with its Tables 1/3 for those domains (EXPERIMENTS.md).\n";
  return 0;
}

// Reproduces Table 4: the target accelerator configuration and the derived
// Roofline ridge points the subbatch analysis depends on.
#include "bench/bench_common.h"
#include "src/hw/accelerator.h"

int main() {
  using namespace gf;
  bench::banner("Table 4", "target accelerator configuration");

  const auto a = hw::AcceleratorConfig::v100_like();
  util::Table table({"Component", "Configuration"});
  table.add_row({"Compute Throughput, 32-bit (xc)",
                 util::format_sig(a.peak_flops / 1e12, 4) + " TFLOP/s"});
  table.add_row({"On-chip Cache", util::format_bytes(a.cache_bytes, 0)});
  table.add_row({"Memory Bandwidth (xa)",
                 util::format_sig(a.mem_bandwidth / 1e9, 3) + " GB/s"});
  table.add_row({"Memory Capacity (off-chip)", util::format_bytes(a.mem_capacity, 0)});
  table.add_row({"Inter-device Bandwidth",
                 util::format_sig(a.interconnect_bandwidth / 1e9, 2) + " GB/s"});
  table.add_separator();
  table.add_row({"Achievable compute (80%)",
                 util::format_sig(a.achievable_flops() / 1e12, 4) + " TFLOP/s"});
  table.add_row({"Achievable bandwidth (70%)",
                 util::format_sig(a.achievable_bandwidth() / 1e9, 3) + " GB/s"});
  table.add_row({"Ridge point (peak)",
                 util::format_sig(a.ridge_point(), 3) + " FLOP/B"});
  table.add_row({"Ridge point (achievable)",
                 util::format_sig(a.achievable_ridge_point(), 3) + " FLOP/B"});
  bench::print_with_csv(table);
  return 0;
}

// Extension study (beyond the paper): the §4 characterization applied to a
// Transformer LM and compared against the paper's LSTM word LM at equal
// parameters. Answers the paper's forward-looking question — does the
// "RNNs have moderate intensity and huge footprints" hardware segmentation
// survive the move to attention?
#include "bench/bench_common.h"
#include "src/analysis/first_order.h"
#include "src/hw/cache_model.h"
#include "src/hw/roofline.h"
#include "src/ir/footprint.h"
#include "src/models/models.h"

int main() {
  using namespace gf;
  bench::banner("Extension", "Transformer LM vs LSTM word LM characterization");

  const auto lstm = models::build_word_lm();
  const auto trans = models::build_transformer_lm();
  const analysis::ModelAnalyzer lstm_an(lstm);
  const analysis::ModelAnalyzer trans_an(trans);

  analysis::FitOptions opt;
  opt.min_params = 5e10;
  opt.max_params = 1e12;
  opt.footprint_batch = 128;
  const auto lstm_fit = analysis::fit_first_order(lstm_an, opt);
  const auto trans_fit = analysis::fit_first_order(trans_an, opt);

  util::Table fits({"constant", "LSTM word LM", "Transformer LM"});
  fits.add_row({"gamma (FLOPs/param/sample)", util::format_sig(lstm_fit.gamma, 4),
                util::format_sig(trans_fit.gamma, 4)});
  fits.add_row({"lambda (bytes/param)", util::format_sig(lstm_fit.lambda, 4),
                util::format_sig(trans_fit.lambda, 4)});
  fits.add_row({"mu (bytes/sample/sqrt(p))", util::format_sig(lstm_fit.mu, 4),
                util::format_sig(trans_fit.mu, 4)});
  fits.add_row({"delta (footprint bytes/param)", util::format_sig(lstm_fit.delta, 4),
                util::format_sig(trans_fit.delta, 4)});
  bench::print_with_csv(fits);

  std::cout << "\nAt the word-LM frontier (23.8B params), subbatch 128:\n";
  const auto accel = hw::AcceleratorConfig::v100_like();
  util::Table at_scale({"quantity", "LSTM word LM", "Transformer LM"});
  const double p = 23.8e9, b = 128;
  const auto lstm_counts = lstm_an.at_params(p, b);
  const auto trans_counts = trans_an.at_params(p, b);
  const auto row = [&](const char* label, double lv, double tv) {
    at_scale.add_row({label, util::format_sig(lv, 4), util::format_sig(tv, 4)});
  };
  row("TFLOPs/step", lstm_counts.flops / 1e12, trans_counts.flops / 1e12);
  row("TB accessed/step", lstm_counts.bytes / 1e12, trans_counts.bytes / 1e12);
  row("op intensity (FLOP/B)", lstm_counts.operational_intensity(),
      trans_counts.operational_intensity());
  row("footprint (GB)", lstm_counts.footprint_bytes / 1e9,
      trans_counts.footprint_bytes / 1e9);
  const auto lstm_t = hw::roofline_step_time(accel, lstm_counts.flops, lstm_counts.bytes);
  const auto trans_t =
      hw::roofline_step_time(accel, trans_counts.flops, trans_counts.bytes);
  row("Roofline step (s)", lstm_t.seconds(), trans_t.seconds());
  row("FLOP utilization (%)", lstm_t.flop_utilization * 100,
      trans_t.flop_utilization * 100);

  const auto lstm_ca = hw::cache_aware_step_time(
      *lstm.graph, lstm.bind(lstm.hidden_for_params(p), b), accel);
  const auto trans_ca = hw::cache_aware_step_time(
      *trans.graph, trans.bind(trans.hidden_for_params(p), b), accel);
  row("cache-aware step (s)", lstm_ca.step_seconds, trans_ca.step_seconds);
  row("cache-aware utilization (%)", lstm_ca.flop_utilization * 100,
      trans_ca.flop_utilization * 100);
  bench::print_with_csv(at_scale);

  std::cout
      << "\nReading: at equal parameters both spend ~6q FLOPs per parameter,\n"
         "but the Transformer batches its GEMMs over all q tokens, so its\n"
         "weight-streaming term (lambda) collapses and graph intensity rises\n"
         "well past the ridge point — the memory-capacity pressure remains\n"
         "(footprints are as large), while the paper's 'moderate intensity'\n"
         "half of the RNN segmentation is an artifact of serial unrolling.\n";
  return 0;
}

// Analysis-layer tests: step characterization, sweeps, and the Table 2
// first-order fits against both internal consistency and paper constants.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/first_order.h"
#include "src/models/models.h"

namespace gf::analysis {
namespace {

TEST(LogSpaced, EndpointsAndMonotonicity) {
  const auto v = log_spaced(1e6, 1e9, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v.front(), 1e6, 1);
  EXPECT_NEAR(v.back(), 1e9, 1e3);
  EXPECT_NEAR(v[1] / v[0], 10.0, 1e-6);
  EXPECT_THROW(log_spaced(1e9, 1e6, 4), std::invalid_argument);
  EXPECT_THROW(log_spaced(1e6, 1e9, 1), std::invalid_argument);
}

TEST(ModelAnalyzer, CountsOnlyMatchesFullAnalysis) {
  const auto spec = models::build_char_lm({.vocab = 30, .depth = 2, .seq_length = 4});
  const ModelAnalyzer an(spec);
  const StepCounts a = an.counts_only(16, 8);
  const StepCounts b = an.at(16, 8);
  EXPECT_DOUBLE_EQ(a.flops, b.flops);
  EXPECT_DOUBLE_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.footprint_bytes, 0.0);
  EXPECT_GT(b.footprint_bytes, 0.0);
  EXPECT_DOUBLE_EQ(b.footprint_bytes, b.persistent_bytes + b.transient_bytes);
}

TEST(ModelAnalyzer, AtParamsHitsTarget) {
  const auto spec = models::build_nmt({.vocab_src = 100,
                                       .vocab_tgt = 100,
                                       .src_length = 3,
                                       .tgt_length = 3,
                                       .decoder_layers = 1});
  const ModelAnalyzer an(spec);
  const StepCounts c = an.at_params(1e6, 4);
  EXPECT_NEAR(c.params, 1e6, 10);
}

TEST(Sweep, ParallelAndSerialAgree) {
  const auto spec = models::build_word_lm({.vocab = 50, .layers = 1, .seq_length = 4});
  const ModelAnalyzer an(spec);
  const auto targets = log_spaced(1e5, 1e7, 6);
  conc::ThreadPool single(1);
  const auto serial = sweep_model_sizes(an, targets, 8, true, &single);
  const auto parallel = sweep_model_sizes(an, targets, 8, true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].flops, parallel[i].flops);
    EXPECT_DOUBLE_EQ(serial[i].footprint_bytes, parallel[i].footprint_bytes);
  }
}

TEST(Sweep, GridShapeIsRowMajor) {
  const auto spec = models::build_word_lm({.vocab = 50, .layers = 1, .seq_length = 3});
  const ModelAnalyzer an(spec);
  const auto grid = sweep_grid(an, {1e5, 1e6}, {4, 8, 16});
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_DOUBLE_EQ(grid[0].batch, 4);
  EXPECT_DOUBLE_EQ(grid[2].batch, 16);
  EXPECT_NEAR(grid[3].params, 1e6, 10);
}

TEST(FirstOrderModel, ClosedFormsAreConsistent) {
  const FirstOrderModel m = paper_first_order(models::Domain::kWordLM);
  const double p = 23.8e9, b = 128;
  EXPECT_NEAR(m.ct(p, b), 1444e12, 40e12);        // Table 3 TFLOPs/step
  EXPECT_NEAR(m.at(p, b), 41.5e12, 1.5e12);       // Table 3 TB/step
  EXPECT_NEAR(m.ft(p), 272e9, 15e9);              // Table 3 footprint
  EXPECT_NEAR(m.operational_intensity(p, b), 34.5, 1.5);
  // Limits: b->inf at fixed p, p->inf at fixed b.
  EXPECT_NEAR(m.intensity_limit_batch(p), 481.0 * std::sqrt(p) / 30784.0, 1e-6);
  EXPECT_NEAR(m.intensity_limit_params(b), 481.0 * 128 / 1755.0, 1e-9);
}

TEST(PaperConstants, AllDomainsPresent) {
  for (auto d : {models::Domain::kWordLM, models::Domain::kCharLM,
                 models::Domain::kNMT, models::Domain::kSpeech,
                 models::Domain::kImage}) {
    const FirstOrderModel m = paper_first_order(d);
    EXPECT_GT(m.gamma, 0);
    EXPECT_GT(m.lambda, 0);
    EXPECT_GT(m.mu, 0);
    EXPECT_GT(m.delta, 0);
  }
}

TEST(Fit, RecoversCharLmConstantsNearPaper) {
  // The char LM reaches its asymptote early (tiny vocabulary), so the
  // graph-derived fit should land close to the paper's Table 2 row.
  const auto spec = models::build_char_lm();
  const ModelAnalyzer an(spec);
  const auto fit = fit_first_order(an, recommended_fit_options(spec.domain));
  const auto paper = paper_first_order(spec.domain);
  EXPECT_NEAR(fit.gamma, paper.gamma, 0.05 * paper.gamma);
  EXPECT_NEAR(fit.lambda, paper.lambda, 0.10 * paper.lambda);
  EXPECT_NEAR(fit.mu, paper.mu, 0.30 * paper.mu);
  EXPECT_NEAR(fit.delta, paper.delta, 0.30 * paper.delta);
  EXPECT_GT(fit.r2_flops, 0.999);
  EXPECT_GT(fit.r2_bytes, 0.99);
}

TEST(Fit, MuAndLambdaArePositiveForAllDomains) {
  // (word LM regression guard: a joint least-squares fit used to return
  // negative mu in the embedding-transition regime).
  for (auto& spec : models::build_all_domains()) {
    const ModelAnalyzer an(spec);
    const auto fit = fit_first_order(an, recommended_fit_options(spec.domain));
    EXPECT_GT(fit.gamma, 0) << spec.name;
    EXPECT_GT(fit.lambda, 0) << spec.name;
    EXPECT_GT(fit.mu, 0) << spec.name;
    EXPECT_GT(fit.delta, 0) << spec.name;
  }
}

TEST(Fit, PredictsSweepPointsWell) {
  const auto spec = models::build_speech();
  const ModelAnalyzer an(spec);
  const auto opt = recommended_fit_options(spec.domain);
  const auto fit = fit_first_order(an, opt);
  // Held-out point inside the fit range.
  const StepCounts c = an.counts_only(spec.hidden_for_params(1e9), 48);
  EXPECT_NEAR(fit.ct(c.params, c.batch), c.flops, 0.05 * c.flops);
  EXPECT_NEAR(fit.at(c.params, c.batch), c.bytes, 0.10 * c.bytes);
}

TEST(Fit, RejectsEmptyBatchList) {
  const auto spec = models::build_char_lm({.vocab = 30, .depth = 2, .seq_length = 3});
  const ModelAnalyzer an(spec);
  FitOptions opt;
  opt.batches.clear();
  EXPECT_THROW(fit_first_order(an, opt), std::invalid_argument);
}

}  // namespace
}  // namespace gf::analysis

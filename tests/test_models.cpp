// Model-family tests: parameter formulas, FLOP asymptotes against the
// paper's Table 2 constants, and structural sanity of every builder.
#include <gtest/gtest.h>

#include <cmath>

#include "src/ir/footprint.h"
#include "src/models/models.h"

namespace gf::models {
namespace {

using sym::Bindings;
using sym::Expr;

double flops_per_param_per_sample(const ModelSpec& spec, double hidden, double batch) {
  const auto bind = spec.bind(hidden, batch);
  return spec.graph->total_flops().eval(bind) / (spec.params_at(hidden) * batch);
}

TEST(WordLm, ParameterFormulaMatchesPaper) {
  // p = 8 h^2 l + 2 h v (+ small biases) for the unprojected LSTM LM.
  const WordLmConfig cfg;
  const ModelSpec spec = build_word_lm(cfg);
  const double h = 2048;
  const double expected = 8.0 * h * h * cfg.layers + 2.0 * h * cfg.vocab;
  const double actual = spec.params_at(h);
  EXPECT_NEAR(actual, expected, 0.01 * expected);  // biases etc. are < 1%
}

TEST(WordLm, FlopAsymptoteIs6qPerParam) {
  // The paper's Table 2: 481 FLOPs/param/sample with q = 80 unroll steps
  // (fwd 2q over recurrent weights, x3 with backward = 6q = 480).
  // The 100K-word embedding keeps the ratio below the asymptote until the
  // recurrent weights dwarf it (the paper notes the same pre-asymptotic
  // effect for large-vocabulary models), so probe deep into the h^2 regime.
  const ModelSpec spec = build_word_lm();
  const double big_h = spec.hidden_for_params(3e11);
  const double ratio = flops_per_param_per_sample(spec, big_h, 16);
  EXPECT_NEAR(ratio, 481.0, 0.05 * 481.0);
}

TEST(WordLm, ProjectionCutsPerStepFlopsAtLargeVocab) {
  // §6.1: with the case-study's large vocabulary, projecting the last
  // hidden layer shrinks the dominant (h x V) output matmul, cutting
  // per-step FLOPs at the same width.
  WordLmConfig plain_cfg;
  plain_cfg.vocab = 800000;
  WordLmConfig proj_cfg = plain_cfg;
  proj_cfg.projection = true;
  const ModelSpec plain = build_word_lm(plain_cfg);
  const ModelSpec projected = build_word_lm(proj_cfg);
  const double h = 8192, b = 128;
  const double f_plain = plain.graph->total_flops().eval(plain.bind(h, b));
  const double f_proj = projected.graph->total_flops().eval(projected.bind(h, b));
  EXPECT_LT(f_proj, 0.5 * f_plain);
}

TEST(CharLm, FlopAsymptoteIs6qPerParam) {
  // Table 2: 900 FLOPs/param/sample with q = 150 (6q = 900).
  const ModelSpec spec = build_char_lm();
  const double big_h = spec.hidden_for_params(1e10);
  const double ratio = flops_per_param_per_sample(spec, big_h, 16);
  EXPECT_NEAR(ratio, 900.0, 0.05 * 900.0);
}

TEST(CharLm, EmbeddingIsSmallFractionOfWeights) {
  const CharLmConfig cfg;
  const ModelSpec spec = build_char_lm(cfg);
  const double h = 1000;
  // vocab*h (embedding) + h*vocab (output) vs 22 h^2 recurrent weights.
  const double embed_fraction = 2.0 * cfg.vocab * h / spec.params_at(h);
  EXPECT_LT(embed_fraction, 0.02);
}

TEST(Nmt, FlopAsymptoteNearPaper) {
  // Table 2: 149 FLOPs/param/sample with 25-step encoder/decoder.
  const ModelSpec spec = build_nmt();
  const double big_h = spec.hidden_for_params(5e10);
  const double ratio = flops_per_param_per_sample(spec, big_h, 16);
  EXPECT_NEAR(ratio, 149.0, 0.10 * 149.0);
}

TEST(Speech, FlopAsymptoteNearPaper) {
  // Table 2: 775 FLOPs/param/sample (300-step pyramidal encoder).
  const ModelSpec spec = build_speech();
  const double big_h = spec.hidden_for_params(1e10);
  const double ratio = flops_per_param_per_sample(spec, big_h, 16);
  EXPECT_NEAR(ratio, 775.0, 0.10 * 775.0);
}

TEST(Speech, EncoderPoolingShrinksTime) {
  SpeechConfig cfg;
  cfg.audio_frames = 80;
  cfg.encoder_layers = 3;
  cfg.decoder_length = 10;
  const ModelSpec spec = build_speech(cfg);
  // Pooled twice: attention runs over 80/4 = 20 encoder states. Indirectly
  // verified: building succeeds and validates (split arithmetic checks).
  EXPECT_NO_THROW(spec.graph->validate());
}

TEST(Speech, RejectsNonDivisibleFrames) {
  SpeechConfig cfg;
  cfg.audio_frames = 301;
  EXPECT_THROW(build_speech(cfg), std::invalid_argument);
}

TEST(ResNet, FlopAsymptoteNearPaper) {
  // Table 2: 1111 FLOPs/param/sample for 224x224 classifiers; dominated by
  // 6 * (output spatial size) over the parameter-heavy stages.
  const ModelSpec spec = build_resnet();
  const double big_h = spec.hidden_for_params(5e9);
  const double ratio = flops_per_param_per_sample(spec, big_h, 16);
  EXPECT_NEAR(ratio, 1111.0, 0.25 * 1111.0);
}

TEST(ResNet, StandardWidthParamCountIsSane) {
  // ResNet-50 at h=64 has ~25.6M parameters.
  const ModelSpec spec = build_resnet();
  EXPECT_NEAR(spec.params_at(64), 25.6e6, 2e6);
}

TEST(ResNet, DepthsBuildAndGrow) {
  double prev = 0.0;
  for (int depth : {18, 34, 50, 101, 152}) {
    ResNetConfig cfg;
    cfg.depth = depth;
    const ModelSpec spec = build_resnet(cfg);
    const double p = spec.params_at(64);
    EXPECT_GT(p, 0.0);
    if (depth > 50) {
      EXPECT_GT(p, prev);  // deeper bottleneck nets are bigger
    }
    prev = p;
  }
  ResNetConfig bad;
  bad.depth = 77;
  EXPECT_THROW(build_resnet(bad), std::invalid_argument);
}

TEST(AllDomains, HiddenForParamsInvertsParams) {
  for (const ModelSpec& spec : build_all_domains()) {
    for (double target : {1e8, 1e9, 2e10}) {
      const double h = spec.hidden_for_params(target);
      EXPECT_NEAR(spec.params_at(h), target, 1e-6 * target) << spec.name;
    }
  }
}

TEST(AllDomains, FlopsLinearInBatch) {
  for (const ModelSpec& spec : build_all_domains()) {
    const Expr flops = spec.graph->total_flops();
    const double h = spec.hidden_for_params(3e8);
    const double f32 = flops.eval(spec.bind(h, 32));
    const double f256 = flops.eval(spec.bind(h, 256));
    // Weight-update terms are batch-independent, so slope is sub-8x but
    // must be within a few percent of linear for real configurations.
    EXPECT_GT(f256 / f32, 7.0) << spec.name;
    EXPECT_LE(f256 / f32, 8.0 + 1e-9) << spec.name;
  }
}

TEST(AllDomains, BytesGrowSublinearlyInBatch) {
  for (const ModelSpec& spec : build_all_domains()) {
    const Expr bytes = spec.graph->total_bytes_accessed();
    const double h = spec.hidden_for_params(3e8);
    const double a32 = bytes.eval(spec.bind(h, 32));
    const double a256 = bytes.eval(spec.bind(h, 256));
    EXPECT_GT(a256, a32) << spec.name;
    EXPECT_LT(a256 / a32, 8.0) << spec.name;  // the λp term does not scale
  }
}

TEST(AllDomains, FootprintHasPersistentFloor) {
  for (const ModelSpec& spec : build_all_domains()) {
    const double h = spec.hidden_for_params(2e8);
    const auto fp = ir::minimal_footprint(*spec.graph, spec.bind(h, 4));
    // SGD training: weights + gradients = 8 bytes/param persistent.
    EXPECT_NEAR(fp.persistent_bytes, 8.0 * spec.params_at(h),
                0.001 * fp.persistent_bytes)
        << spec.name;
    EXPECT_GT(fp.peak_transient_bytes, 0.0) << spec.name;
  }
}

TEST(AllDomains, GraphsValidate) {
  for (const ModelSpec& spec : build_all_domains())
    EXPECT_NO_THROW(spec.graph->validate()) << spec.name;
}

TEST(AllDomains, ParamsDependOnlyOnHidden) {
  for (const ModelSpec& spec : build_all_domains()) {
    const auto syms = spec.params.free_symbols();
    EXPECT_EQ(syms, std::set<std::string>{kHiddenSymbol}) << spec.name;
  }
}

}  // namespace
}  // namespace gf::models

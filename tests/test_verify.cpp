// Static-analysis (verify) subsystem tests: the collect-all engine, each
// built-in pass's negative paths (mutated graphs produce diagnostics, not
// crashes), the throwing compat shim, corrupted serialized graphs, the
// executor's opt-in pre-dispatch hook, and the headline race checker —
// including the "deleted WAR edge" scenario the pass exists to catch.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/ir/gradients.h"
#include "src/ir/graph.h"
#include "src/ir/ops.h"
#include "src/ir/serialize.h"
#include "src/runtime/executor.h"
#include "src/verify/pass.h"

namespace gf::verify {
namespace {

using ir::DataType;
using ir::Graph;
using ir::Op;
using ir::OpType;
using ir::Tensor;
using sym::Expr;

/// Small trainable MLP (concrete dims so the executor can run it too).
struct Mlp {
  Graph g{"mlp"};
  Tensor* x = nullptr;
  Tensor* w1 = nullptr;
  Tensor* loss = nullptr;

  Mlp() {
    x = g.add_input("x", {Expr(4), Expr(8)});
    Tensor* labels = g.add_input("labels", {Expr(4)}, DataType::kInt32);
    w1 = g.add_weight("w1", {Expr(8), Expr(16)});
    Tensor* w2 = g.add_weight("w2", {Expr(16), Expr(4)});
    Tensor* h = ir::relu(g, "relu", ir::matmul(g, "fc1", x, w1));
    Tensor* logits = ir::matmul(g, "fc2", h, w2);
    auto [per_row, probs] = ir::softmax_xent(g, "xent", logits, labels);
    (void)probs;
    loss = ir::reduce_mean(g, "loss", per_row);
  }
};

bool has_diag(const std::vector<Diagnostic>& diags, Severity sev,
              const std::string& pass, const std::string& needle) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.severity == sev && d.pass == pass &&
           (d.message.find(needle) != std::string::npos ||
            d.location.find(needle) != std::string::npos);
  });
}

// --- engine ----------------------------------------------------------------

TEST(VerifyEngine, CleanTrainingGraphHasNoFindings) {
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  const VerifyResult result = verify_graph(m.g);
  EXPECT_EQ(result.count(Severity::kError), 0u);
  EXPECT_EQ(result.count(Severity::kWarning), 0u);
  ASSERT_EQ(result.passes_run.size(), 11u);
  EXPECT_EQ(result.passes_run.front(), "structure");
  EXPECT_EQ(result.passes_run.back(), "equiv");
}

TEST(VerifyEngine, PassSelectionAndUnknownPass) {
  Mlp m;
  const VerifyResult result = verify_graph(m.g, {.passes = {"races", "structure"}});
  EXPECT_EQ(result.passes_run, (std::vector<std::string>{"races", "structure"}));
  EXPECT_THROW(verify_graph(m.g, {.passes = {"nonsense"}}), std::invalid_argument);
}

TEST(VerifyEngine, CollectsFindingsAcrossPasses) {
  // One mutation visible to shapes AND gradients: both report, neither
  // aborts the other — the collect-all contract the old validate() lacked.
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  m.w1->set_shape({Expr(8), Expr(15)});
  const VerifyResult result = verify_graph(m.g);
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kError, "shapes", "fc1"));
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kError, "gradients", "w1"));
}

TEST(VerifyEngine, JsonOutputIsWellFormedEnough) {
  Mlp m;
  const VerifyResult result = verify_graph(m.g);
  std::ostringstream os;
  result.print_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"graph\": \"mlp\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// --- compat shim -----------------------------------------------------------

TEST(VerifyShim, ValidateThrowsListingAllErrors) {
  Mlp m;
  m.g.make_tensor("orphan1", {Expr(2)}, DataType::kFloat32, ir::TensorRole::kActivation);
  m.g.make_tensor("orphan2", {Expr(3)}, DataType::kFloat32, ir::TensorRole::kActivation);
  try {
    m.g.validate();
    FAIL() << "validate() must throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("orphan1"), std::string::npos);
    EXPECT_NE(what.find("orphan2"), std::string::npos);  // not just the first
  }
}

TEST(VerifyShim, ValidateAcceptsCleanGraph) {
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  EXPECT_NO_THROW(m.g.validate());
}

// --- structure -------------------------------------------------------------

TEST(VerifyStructure, InconsistentWiringCycleIsDiagnosedNotFatal) {
  Mlp m;
  // Claim the graph input is produced by the loss op: creates a cycle and
  // a producer/output inconsistency. verify_graph must survive both.
  const Op* loss_op = m.loss->producer();
  m.x->set_producer(loss_op);
  VerifyResult result;
  ASSERT_NO_THROW(result = verify_graph(m.g));
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kError, "structure", "cycle"));
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kError, "structure",
                       "does not list it as an output"));
  // The race pass cannot topo-sort a cyclic graph; that is a finding too.
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kError, "races", "scheduler DAG"));
}

TEST(VerifyStructure, TensorsOnlyGraphWarnsAboutTruncation) {
  Graph g("stub");
  g.add_weight("w", {Expr(3)});
  const VerifyResult result = verify_graph(g);
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kWarning, "structure", "no ops"));
}

// --- shapes ----------------------------------------------------------------

TEST(VerifyShapes, MutatedWeightShapeIsCaught) {
  Mlp m;
  m.w1->set_shape({Expr(9), Expr(16)});  // fc1 contraction dim now 8 vs 9
  const VerifyResult result = verify_graph(m.g, {.passes = {"shapes"}});
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kError, "shapes", "fc1"));
}

TEST(VerifyShapes, MutatedReshapeElementCountIsCaught) {
  Graph g("reshape");
  Tensor* x = g.add_input("x", {Expr(4), Expr(6)});
  Tensor* y = ir::reshape(g, "flat", x, {Expr(24)});
  y->set_shape({Expr(23)});
  const VerifyResult result = verify_graph(g, {.passes = {"shapes"}});
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kError, "shapes", "element count"));
}

// --- symbolic --------------------------------------------------------------

TEST(VerifySymbolic, NonPositiveDimensionIsAnError) {
  Graph g("dims");
  const Expr h = Expr::symbol("h");
  g.add_weight("w", {h, h - h});  // second dim is provably 0
  const VerifyResult result = verify_graph(g, {.passes = {"symbolic"}});
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kError, "symbolic",
                       "provably non-positive"));
}

TEST(VerifySymbolic, UnprovableDimensionIsAWarning) {
  Graph g("dims");
  const Expr h = Expr::symbol("h");
  g.add_weight("w", {h - Expr(1)});  // h > 0 does not make h-1 positive
  const VerifyResult result = verify_graph(g, {.passes = {"symbolic"}});
  EXPECT_EQ(result.count(Severity::kError), 0u);
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kWarning, "symbolic",
                       "cannot prove"));
}

// --- gradients -------------------------------------------------------------

TEST(VerifyGradients, WeightWithoutUpdateIsCaught) {
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  m.g.add_weight("w_dead", {Expr(5)});
  const VerifyResult result = verify_graph(m.g, {.passes = {"gradients"}});
  EXPECT_TRUE(has_diag(result.diagnostics, Severity::kError, "gradients", "w_dead"));
}

TEST(VerifyGradients, ForwardOnlyGraphIsExempt) {
  Mlp m;  // weights but no ApplyGradient ops: inference graph, not broken
  const VerifyResult result = verify_graph(m.g, {.passes = {"gradients"}});
  EXPECT_EQ(result.diagnostics.size(), 0u);
}

// --- races -----------------------------------------------------------------

/// Training graph plus a "probe" op that reads w1 but whose result never
/// reaches the loss: the probe's only ordering against the weight update
/// is the WAR hazard edge itself (no transitive path via the gradient
/// chain), so deleting that edge is a real, detectable schedule race.
struct ProbedMlp {
  Mlp m;
  std::string update_name;

  ProbedMlp() {
    ir::relu(m.g, "probe", m.w1);
    ir::build_training_step(m.g, m.loss);
    update_name = "update_w1";
  }
};

TEST(VerifyRaces, IntactTrainingGraphIsRaceFree) {
  ProbedMlp p;
  const ir::OpDag dag = ir::build_op_dag(p.m.g);
  EXPECT_TRUE(check_races(p.m.g, dag).empty());
  const VerifyResult result = verify_graph(p.m.g, {.passes = {"races"}});
  EXPECT_EQ(result.count(Severity::kError), 0u);
}

TEST(VerifyRaces, DeletedWarEdgeIsReported) {
  ProbedMlp p;
  ir::OpDag dag = ir::build_op_dag(p.m.g);
  std::size_t probe = dag.order.size(), update = dag.order.size();
  for (std::size_t i = 0; i < dag.order.size(); ++i) {
    if (dag.order[i]->name() == "probe") probe = i;
    if (dag.order[i]->name() == p.update_name) update = i;
  }
  ASSERT_LT(probe, dag.order.size());
  ASSERT_LT(update, dag.order.size());
  auto& succ = dag.successors[probe];
  ASSERT_TRUE(std::binary_search(succ.begin(), succ.end(), update))
      << "probe -> update must be a direct WAR edge";

  // Delete the hazard edge, as a buggy DAG builder would.
  succ.erase(std::find(succ.begin(), succ.end(), update));
  --dag.predecessor_count[update];

  const std::vector<Diagnostic> races = check_races(p.m.g, dag);
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].severity, Severity::kError);
  EXPECT_EQ(races[0].pass, "races");
  EXPECT_EQ(races[0].location, "tensor 'w1'");
  EXPECT_NE(races[0].message.find("'probe' (reads)"), std::string::npos);
  EXPECT_NE(races[0].message.find("'update_w1' (updates in place)"),
            std::string::npos);
  EXPECT_NE(races[0].message.find("unordered"), std::string::npos);
}

TEST(VerifyRaces, TransitivelyOrderedPairIsNotARace) {
  // fc1 reads w1 and update_w1 writes it; besides the direct WAR edge
  // there is a transitive path through the gradient chain. Deleting only
  // the direct edge must NOT produce a finding.
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  ir::OpDag dag = ir::build_op_dag(m.g);
  std::size_t fc1 = dag.order.size(), update = dag.order.size();
  for (std::size_t i = 0; i < dag.order.size(); ++i) {
    if (dag.order[i]->name() == "fc1") fc1 = i;
    if (dag.order[i]->name() == "update_w1") update = i;
  }
  ASSERT_LT(fc1, dag.order.size());
  ASSERT_LT(update, dag.order.size());
  auto& succ = dag.successors[fc1];
  auto it = std::find(succ.begin(), succ.end(), update);
  if (it != succ.end()) {
    succ.erase(it);
    --dag.predecessor_count[update];
  }
  EXPECT_TRUE(check_races(m.g, dag).empty());
}

// --- serialized graphs -----------------------------------------------------

TEST(VerifySerialized, GarbageFileYieldsLoadDiagnostic) {
  std::istringstream is("this is not a graph\n");
  const VerifyResult result = verify_serialized(is);
  EXPECT_EQ(result.passes_run, std::vector<std::string>{"load"});
  EXPECT_TRUE(result.has_errors());
  EXPECT_EQ(result.diagnostics.at(0).pass, "load");
}

TEST(VerifySerialized, TruncatedMidLineYieldsLoadDiagnostic) {
  Mlp m;
  const std::string text = ir::serialize(m.g);
  std::istringstream is(text.substr(0, text.size() / 2));
  const VerifyResult result = verify_serialized(is);
  // Either the cut line fails to parse (load error) or the prefix parses
  // and the structure pass flags the dangling remainder; never a crash,
  // never silently clean.
  EXPECT_GT(result.diagnostics.size(), 0u);
}

TEST(VerifySerialized, IntactRoundTripIsClean) {
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  std::istringstream is(ir::serialize(m.g));
  const VerifyResult result = verify_serialized(is);
  EXPECT_EQ(result.count(Severity::kError), 0u);
  EXPECT_EQ(result.graph_name, "mlp");
}

// --- executor hook ---------------------------------------------------------

TEST(VerifyExecutorHook, CleanGraphConstructs) {
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  rt::ExecutorOptions opt;
  opt.verify = true;
  rt::Executor ex(m.g, {}, opt);
  EXPECT_NO_THROW(ex.run_step());
}

TEST(VerifyExecutorHook, BrokenGraphIsRejectedBeforeDispatch) {
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  m.g.make_tensor("orphan", {Expr(2)}, DataType::kFloat32, ir::TensorRole::kActivation);
  rt::ExecutorOptions opt;
  opt.verify = true;
  EXPECT_THROW(rt::Executor(m.g, {}, opt), std::logic_error);
  opt.verify = false;  // hook is opt-in: without it construction proceeds
  EXPECT_NO_THROW(rt::Executor(m.g, {}, opt));
}

}  // namespace
}  // namespace gf::verify

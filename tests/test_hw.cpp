// Hardware-model tests: Table 4 ridge points, Roofline behavior, the
// cache-aware tiled-GEMM traffic model, and the subbatch optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "src/hw/cache_model.h"
#include "src/hw/subbatch.h"
#include "src/models/word_lm.h"

namespace gf::hw {
namespace {

TEST(Accelerator, Table4RidgePoints) {
  const AcceleratorConfig a = AcceleratorConfig::v100_like();
  EXPECT_NEAR(a.ridge_point(), 17.4, 0.1);             // paper Table 4
  EXPECT_NEAR(a.achievable_ridge_point(), 19.9, 0.1);  // paper §5.2
  EXPECT_NO_THROW(a.validate());
}

TEST(Accelerator, ValidationCatchesBadConfigs) {
  AcceleratorConfig a;
  a.peak_flops = -1;
  EXPECT_THROW(a.validate(), std::invalid_argument);
  a = {};
  a.achievable_compute_fraction = 1.5;
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Roofline, ComputeVsMemoryBound) {
  const AcceleratorConfig a = AcceleratorConfig::v100_like();
  // High intensity -> compute bound at 80% of peak.
  const RooflineTime hi = roofline_step_time(a, 1e15, 1e12);
  EXPECT_TRUE(hi.compute_bound);
  EXPECT_NEAR(hi.flop_utilization, 0.80, 1e-9);
  // Low intensity -> memory bound, low utilization.
  const RooflineTime lo = roofline_step_time(a, 1e12, 1e12);
  EXPECT_FALSE(lo.compute_bound);
  EXPECT_LT(lo.flop_utilization, 0.15);
  EXPECT_GT(lo.seconds(), 0.0);
}

TEST(Roofline, CrossoverAtRidgePoint) {
  const AcceleratorConfig a = AcceleratorConfig::v100_like();
  const double bytes = 1e12;
  const double flops = a.achievable_ridge_point() * bytes;
  const RooflineTime t = roofline_step_time(a, flops, bytes);
  EXPECT_NEAR(t.compute_seconds, t.memory_seconds, 1e-9 * t.compute_seconds);
}

TEST(TiledMatmul, NeverBelowAlgorithmicBytes) {
  const double alg = (512.0 * 512 + 512.0 * 512 + 512.0 * 512) * 4;
  const double tiled = tiled_matmul_bytes(512, 512, 512, 1, 4, 6e6);
  EXPECT_GE(tiled, 0.9 * alg);  // equal up to the 2x output term
}

TEST(TiledMatmul, LargerCacheReducesTraffic) {
  double prev = 1e300;
  for (double cache : {1e5, 1e6, 6e6, 6e7}) {
    const double t = tiled_matmul_bytes(1e4, 1e4, 1e4, 1, 4, cache);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(TiledMatmul, TallSkinnyRestreamsLittle) {
  // Batch-row GEMM (small M): B fits one pass, so traffic stays near
  // algorithmic; square giant GEMMs restream heavily.
  const double m = 128, k = 2e4, n = 8e4;
  const double alg = (m * k + k * n + m * n) * 4;
  const double tiled = tiled_matmul_bytes(m, n, k, 1, 4, 6e6);
  EXPECT_LT(tiled, 3.0 * alg);
  const double square = tiled_matmul_bytes(3e4, 3e4, 3e4, 1, 4, 6e6);
  const double alg_square = 3.0 * 3e4 * 3e4 * 4;
  EXPECT_GT(square, 10.0 * alg_square);
}

TEST(TiledMatmul, RejectsBadDims) {
  EXPECT_THROW(tiled_matmul_bytes(0, 1, 1, 1, 4, 6e6), std::invalid_argument);
  EXPECT_THROW(tiled_matmul_bytes(1, 1, 1, 1, 0, 6e6), std::invalid_argument);
}

TEST(CacheAware, WordLmUtilizationDropsLikePaper) {
  // §6.1: cache-hierarchy-aware modeling reduces the projected word LM
  // from the 80% best case to ~46% algorithmic FLOP utilization.
  models::WordLmConfig cfg;
  cfg.vocab = 800000;
  cfg.projection = true;
  const auto spec = models::build_word_lm(cfg);
  const double h = spec.hidden_for_params(23.8e9);
  const auto bind = spec.bind(h, 128);
  const AcceleratorConfig accel = AcceleratorConfig::v100_like();

  const RooflineTime best = best_case_step_time(*spec.graph, bind, accel);
  EXPECT_NEAR(best.flop_utilization, 0.80, 1e-6);

  const CacheAwareResult ca = cache_aware_step_time(*spec.graph, bind, accel);
  EXPECT_GT(ca.step_seconds, best.seconds());
  EXPECT_LT(ca.flop_utilization, 0.65);
  EXPECT_GT(ca.flop_utilization, 0.35);  // paper: 46%
  EXPECT_GE(ca.restream_factor(), 1.0);
}

TEST(CacheAware, BiggerCacheRecoversUtilization) {
  models::WordLmConfig cfg;
  cfg.vocab = 50000;
  const auto spec = models::build_word_lm(cfg);
  const auto bind = spec.bind(spec.hidden_for_params(2e9), 64);
  AcceleratorConfig small = AcceleratorConfig::v100_like();
  AcceleratorConfig big = small;
  big.cache_bytes = 96e6;  // 16x cache
  const auto u_small = cache_aware_step_time(*spec.graph, bind, small);
  const auto u_big = cache_aware_step_time(*spec.graph, bind, big);
  EXPECT_GT(u_big.flop_utilization, u_small.flop_utilization);
  EXPECT_LE(u_big.cache_aware_bytes, u_small.cache_aware_bytes);
}

// --- subbatch optimizer -------------------------------------------------

analysis::FirstOrderModel word_lm_model() {
  return analysis::paper_first_order(models::Domain::kWordLM);
}

TEST(Subbatch, PerSampleTimeMonotonicallyImproves) {
  const auto model = word_lm_model();
  const AcceleratorConfig accel = AcceleratorConfig::v100_like();
  const auto choice = choose_subbatch(model, 23.8e9, accel);
  for (std::size_t i = 1; i < choice.sweep.size(); ++i)
    EXPECT_LE(choice.sweep[i].per_sample_seconds,
              choice.sweep[i - 1].per_sample_seconds * (1 + 1e-9));
}

TEST(Subbatch, IntensityGrowsAndSaturates) {
  const auto model = word_lm_model();
  const AcceleratorConfig accel = AcceleratorConfig::v100_like();
  const auto choice = choose_subbatch(model, 23.8e9, accel);
  for (std::size_t i = 1; i < choice.sweep.size(); ++i)
    EXPECT_GE(choice.sweep[i].op_intensity, choice.sweep[i - 1].op_intensity);
  const double limit = model.intensity_limit_batch(23.8e9);
  EXPECT_LT(choice.sweep.back().op_intensity, limit);
  EXPECT_GT(choice.sweep.back().op_intensity, 0.95 * limit);
}

TEST(Subbatch, PaperOrderingOfPointsOfInterest) {
  // Figure 11: ridge-match < best (~1.5x ridge for recurrent nets)
  // << saturation, which costs 5-20x the footprint.
  const auto model = word_lm_model();
  const AcceleratorConfig accel = AcceleratorConfig::v100_like();
  const auto choice = choose_subbatch(model, 23.8e9, accel);
  EXPECT_GT(choice.best, choice.ridge);
  EXPECT_LT(choice.best, 4.0 * choice.ridge);
  EXPECT_GT(choice.saturation, 4.0 * choice.best);
}

TEST(Subbatch, PaperSubbatchIsNearOptimal) {
  // Table 3 uses subbatch 128 for word LMs; the optimizer should land in
  // the same power-of-two neighborhood.
  const auto model = word_lm_model();
  const AcceleratorConfig accel = AcceleratorConfig::v100_like();
  const auto choice = choose_subbatch(model, 23.8e9, accel);
  EXPECT_GE(choice.best, 32);
  EXPECT_LE(choice.best, 512);
}

TEST(Subbatch, RejectsBadRange) {
  const auto model = word_lm_model();
  SubbatchOptions opt;
  opt.min_batch = 0;
  EXPECT_THROW(choose_subbatch(model, 1e9, AcceleratorConfig::v100_like(), opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace gf::hw

// End-to-end executor tests: the numeric runtime must agree with the
// symbolic layer (FLOPs, bytes, footprint), compute correct gradients
// (finite differences), and actually train (loss decreases).
#include <gtest/gtest.h>

#include <cmath>

#include "src/ir/footprint.h"
#include "src/ir/gradients.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"

namespace gf::rt {
namespace {

using ir::Graph;
using ir::Tensor;
using sym::Bindings;
using sym::Expr;

struct TinyMlp {
  Graph g{"mlp"};
  Tensor* loss = nullptr;
  Tensor* w1 = nullptr;
  Tensor* w2 = nullptr;

  explicit TinyMlp(ir::Optimizer opt = ir::Optimizer::kSGD) {
    const Expr b = Expr::symbol("batch");
    Tensor* x = g.add_input("x", {b, Expr(6)});
    Tensor* labels = g.add_input("labels", {b}, ir::DataType::kInt32);
    w1 = g.add_weight("w1", {Expr(6), Expr(8)});
    Tensor* b1 = g.add_weight("b1", {Expr(8)});
    w2 = g.add_weight("w2", {Expr(8), Expr(3)});
    Tensor* h = ir::tanh(g, "act", ir::bias_add(g, "ba", ir::matmul(g, "fc1", x, w1), b1));
    auto [per_row, probs] = ir::softmax_xent(g, "xent", ir::matmul(g, "fc2", h, w2), labels);
    (void)probs;
    loss = ir::reduce_mean(g, "loss", per_row);
    ir::build_training_step(g, loss, {.optimizer = opt});
  }
};

// Symbolic expectations come from the graph the executor actually runs
// (executing_graph()): identical to the built graph normally, the fused
// rewrite under GF_FUSE=1 — either way measured counters must match the
// executed graph's formulas exactly.
TEST(Executor, FlopsMatchSymbolicExactly) {
  TinyMlp m;
  const Bindings bind{{"batch", 16}};
  Executor ex(m.g, bind);
  const ProfileReport report = ex.run_step();
  const double symbolic = ex.executing_graph().total_flops().eval(bind);
  EXPECT_NEAR(report.total_flops, symbolic, 1e-6 * symbolic);
}

TEST(Executor, BytesMatchSymbolicExactly) {
  TinyMlp m;
  const Bindings bind{{"batch", 16}};
  Executor ex(m.g, bind);
  const ProfileReport report = ex.run_step();
  const double symbolic = ex.executing_graph().total_bytes_accessed().eval(bind);
  EXPECT_NEAR(report.total_bytes, symbolic, 1e-6 * symbolic);
}

TEST(Executor, ArenaPeakMatchesTopologicalFootprint) {
  TinyMlp m;
  const Bindings bind{{"batch", 16}};
  Executor ex(m.g, bind);
  const auto predicted = ir::minimal_footprint(ex.executing_graph(), bind);
  // Weight-gradient buffers reach steady state after the first step; the
  // topological estimator models that steady state.
  ex.run_step();
  const ProfileReport report = ex.run_step();
  EXPECT_DOUBLE_EQ(static_cast<double>(report.peak_allocated_bytes),
                   predicted.total_bytes);
}

TEST(Executor, GradientsPassFiniteDifferenceCheck) {
  TinyMlp m;
  const Bindings bind{{"batch", 4}};
  ExecutorOptions opt;
  opt.apply_updates = false;  // freeze weights across probe runs
  Executor ex(m.g, bind, opt);
  ex.retain(m.loss);

  // Locate the accumulated gradient tensor for w1.
  const ir::Tensor* gw1 = nullptr;
  for (const auto& op : m.g.ops())
    if (op->type() == ir::OpType::kApplyGradient && op->input(0) == m.w1)
      gw1 = op->input(1);
  ASSERT_NE(gw1, nullptr);

  ex.run_step();
  std::vector<float> grads(5);
  for (int i = 0; i < 5; ++i) grads[static_cast<std::size_t>(i)] = ex.value(gw1).f(i);

  const double eps = 1e-3;
  for (int i = 0; i < 5; ++i) {
    DenseTensor& w = ex.weight_value(m.w1);
    const float original = w.f(i);
    w.f(i) = original + static_cast<float>(eps);
    ex.run_step();
    const double lp = ex.value(m.loss).f(0);
    w.f(i) = original - static_cast<float>(eps);
    ex.run_step();
    const double lm = ex.value(m.loss).f(0);
    w.f(i) = original;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grads[static_cast<std::size_t>(i)], numeric,
                2e-2 * std::max(0.05, std::fabs(numeric)))
        << "weight index " << i;
  }
}

TEST(Executor, TrainingReducesLoss) {
  TinyMlp m;
  const Bindings bind{{"batch", 8}};
  ExecutorOptions opt;
  opt.learning_rate = 0.2;
  Executor ex(m.g, bind, opt);
  ex.retain(m.loss);
  ex.run_step();
  const float first = ex.value(m.loss).f(0);
  for (int i = 0; i < 80; ++i) ex.run_step();
  const float last = ex.value(m.loss).f(0);
  EXPECT_LT(last, 0.3f * first);  // inputs are fixed, so it must memorize
}

TEST(Executor, MomentumTrainsToo) {
  TinyMlp m(ir::Optimizer::kMomentum);
  const Bindings bind{{"batch", 16}};
  ExecutorOptions opt;
  opt.learning_rate = 0.05;
  Executor ex(m.g, bind, opt);
  ex.retain(m.loss);
  ex.run_step();
  const float first = ex.value(m.loss).f(0);
  for (int i = 0; i < 40; ++i) ex.run_step();
  EXPECT_LT(ex.value(m.loss).f(0), first);
}

TEST(Executor, RejectsBadInputShape) {
  TinyMlp m;
  Executor ex(m.g, {{"batch", 4}});
  DenseTensor wrong({3, 6}, ir::DataType::kFloat32);
  EXPECT_THROW(ex.set_input(m.g.inputs()[0], std::move(wrong)), std::invalid_argument);
}

TEST(Executor, PinnedInputIsUsed) {
  // A pinned all-zero input through tanh keeps the hidden layer at the
  // bias value; checking determinism of the loss across two steps with
  // updates disabled.
  TinyMlp m;
  ExecutorOptions opt;
  opt.apply_updates = false;
  Executor ex(m.g, {{"batch", 4}}, opt);
  ex.retain(m.loss);
  DenseTensor zeros({4, 6}, ir::DataType::kFloat32);
  ex.set_input(m.g.inputs()[0], std::move(zeros));
  ex.run_step();
  const float l1 = ex.value(m.loss).f(0);
  ex.run_step();
  EXPECT_FLOAT_EQ(ex.value(m.loss).f(0), l1);
}

// --- full paper models at toy sizes -------------------------------------

struct ModelCase {
  const char* name;
  models::ModelSpec spec;
  double hidden;
  double batch;
};

std::vector<ModelCase> toy_models() {
  std::vector<ModelCase> cases;
  {
    models::WordLmConfig cfg;
    cfg.vocab = 40;
    cfg.seq_length = 5;
    cfg.layers = 2;
    cases.push_back({"word_lm", models::build_word_lm(cfg), 8, 2});
  }
  {
    models::CharLmConfig cfg;
    cfg.vocab = 20;
    cfg.depth = 3;
    cfg.seq_length = 4;
    cases.push_back({"char_lm", models::build_char_lm(cfg), 8, 2});
  }
  {
    models::NmtConfig cfg;
    cfg.vocab_src = 30;
    cfg.vocab_tgt = 30;
    cfg.src_length = 4;
    cfg.tgt_length = 3;
    cfg.decoder_layers = 1;
    cases.push_back({"nmt", models::build_nmt(cfg), 8, 2});
  }
  {
    models::SpeechConfig cfg;
    cfg.audio_frames = 8;
    cfg.feature_dim = 5;
    cfg.encoder_layers = 2;
    cfg.decoder_length = 3;
    cfg.vocab = 15;
    cases.push_back({"speech", models::build_speech(cfg), 6, 2});
  }
  {
    models::ResNetConfig cfg;
    cfg.depth = 18;
    cfg.image_size = 32;
    cfg.classes = 10;
    cases.push_back({"resnet", models::build_resnet(cfg), 4, 2});
  }
  return cases;
}

class ToyModelExecution : public ::testing::TestWithParam<int> {};

TEST_P(ToyModelExecution, RunsAndMatchesSymbolicCounts) {
  auto cases = toy_models();
  ModelCase& c = cases[static_cast<std::size_t>(GetParam())];
  const Bindings bind = c.spec.bind(c.hidden, c.batch);

  Executor ex(*c.spec.graph, bind);
  ex.run_step();  // reach weight-gradient steady state
  const ProfileReport report = ex.run_step();

  // Against the executed graph's formulas: the built graph normally, the
  // fused rewrite under GF_FUSE=1.
  const double sym_flops = ex.executing_graph().total_flops().eval(bind);
  const double sym_bytes = ex.executing_graph().total_bytes_accessed().eval(bind);
  EXPECT_NEAR(report.total_flops, sym_flops, 1e-6 * sym_flops) << c.name;
  EXPECT_NEAR(report.total_bytes, sym_bytes, 1e-6 * sym_bytes) << c.name;

  const auto fp = ir::minimal_footprint(ex.executing_graph(), bind);
  if (const MemoryPlan* plan = ex.memory_plan()) {
    // Planned mode (GF_MEMORY_PLAN=1): the measured peak IS the plan, and
    // the slab stays within per-tensor alignment padding of the analytic
    // sequential footprint.
    EXPECT_EQ(report.peak_allocated_bytes, plan->planned_peak_bytes()) << c.name;
    EXPECT_LE(static_cast<double>(plan->planned_peak_bytes()),
              fp.total_bytes + static_cast<double>(kTensorAlignment * plan->tensors.size()))
        << c.name;
  } else {
    EXPECT_DOUBLE_EQ(static_cast<double>(report.peak_allocated_bytes), fp.total_bytes)
        << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, ToyModelExecution, ::testing::Range(0, 5));

TEST(ToyModelTraining, WordLmLossDecreases) {
  models::WordLmConfig cfg;
  cfg.vocab = 30;
  cfg.seq_length = 4;
  cfg.layers = 1;
  auto spec = models::build_word_lm(cfg);
  const Bindings bind = spec.bind(12, 4);

  const ir::Tensor* loss = spec.loss;
  ASSERT_NE(loss, nullptr);

  ExecutorOptions opt;
  opt.learning_rate = 0.5;
  Executor ex(*spec.graph, bind, opt);
  ex.retain(loss);
  ex.run_step();
  const float first = ex.value(loss).f(0);
  for (int i = 0; i < 30; ++i) ex.run_step();
  EXPECT_LT(ex.value(loss).f(0), first);
}

}  // namespace
}  // namespace gf::rt

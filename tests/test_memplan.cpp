// Static memory planner tests: plan structure (alignment, disjointness,
// determinism, aliasing), the verify-pass cross-check including negative
// cases with hand-broken plans, arena accounting hardening, and end-to-end
// parity — measured arena peak == planned peak == Fig 10 footprint (within
// alignment padding) on every built-in model, with bitwise-identical
// results plan-on vs plan-off across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "src/concurrency/thread_pool.h"
#include "src/ir/footprint.h"
#include "src/ir/gradients.h"
#include "src/ir/ops.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"
#include "src/verify/pass.h"

namespace gf::rt {
namespace {

using ir::Graph;
using ir::Tensor;
using sym::Bindings;
using sym::Expr;

struct TinyMlp {
  Graph g{"mlp"};
  Tensor* loss = nullptr;

  TinyMlp() {
    const Expr b = Expr::symbol("batch");
    Tensor* x = g.add_input("x", {b, Expr(6)});
    Tensor* labels = g.add_input("labels", {b}, ir::DataType::kInt32);
    Tensor* w1 = g.add_weight("w1", {Expr(6), Expr(8)});
    Tensor* b1 = g.add_weight("b1", {Expr(8)});
    Tensor* w2 = g.add_weight("w2", {Expr(8), Expr(3)});
    Tensor* h = ir::tanh(g, "act", ir::bias_add(g, "ba", ir::matmul(g, "fc1", x, w1), b1));
    auto [per_row, probs] = ir::softmax_xent(g, "xent", ir::matmul(g, "fc2", h, w2), labels);
    (void)probs;
    loss = ir::reduce_mean(g, "loss", per_row);
    ir::build_training_step(g, loss, {});
  }
};

struct ModelCase {
  const char* name;
  models::ModelSpec spec;
  double hidden;
};

/// All six built-in model families at toy sizes.
std::vector<ModelCase> builtin_models() {
  std::vector<ModelCase> cases;
  {
    models::WordLmConfig cfg;
    cfg.vocab = 40;
    cfg.seq_length = 5;
    cfg.layers = 2;
    cases.push_back({"word_lm", models::build_word_lm(cfg), 8});
  }
  {
    models::CharLmConfig cfg;
    cfg.vocab = 20;
    cfg.depth = 3;
    cfg.seq_length = 4;
    cases.push_back({"char_lm", models::build_char_lm(cfg), 8});
  }
  {
    models::NmtConfig cfg;
    cfg.vocab_src = 30;
    cfg.vocab_tgt = 30;
    cfg.src_length = 4;
    cfg.tgt_length = 3;
    cfg.decoder_layers = 1;
    cases.push_back({"nmt", models::build_nmt(cfg), 8});
  }
  {
    models::SpeechConfig cfg;
    cfg.audio_frames = 8;
    cfg.feature_dim = 5;
    cfg.encoder_layers = 2;
    cfg.decoder_length = 3;
    cfg.vocab = 15;
    cases.push_back({"speech", models::build_speech(cfg), 6});
  }
  {
    models::ResNetConfig cfg;
    cfg.depth = 18;
    cfg.image_size = 32;
    cfg.classes = 10;
    cases.push_back({"resnet", models::build_resnet(cfg), 4});
  }
  {
    models::TransformerLmConfig cfg;
    cfg.vocab = 40;
    cfg.layers = 2;
    cfg.seq_length = 6;
    cases.push_back({"transformer_lm", models::build_transformer_lm(cfg), 8});
  }
  return cases;
}

std::size_t error_count(const std::vector<verify::Diagnostic>& diags) {
  std::size_t n = 0;
  for (const auto& d : diags)
    if (d.severity == verify::Severity::kError) ++n;
  return n;
}

// --- arena accounting hardening (satellite) -------------------------------

TEST(ArenaAccounting, UnderflowingReleaseThrowsAndLeavesCurrentIntact) {
  ArenaAccounting arena;
  arena.allocate(100);
  // The old fetch_sub-then-check implementation wrapped current_ to a huge
  // value before throwing; the CAS loop must leave it untouched.
  EXPECT_THROW(arena.release(101), std::logic_error);
  EXPECT_EQ(arena.current_bytes(), 100u);
  EXPECT_EQ(arena.peak_bytes(), 100u);
  arena.release(100);
  EXPECT_EQ(arena.current_bytes(), 0u);
  EXPECT_THROW(arena.release(1), std::logic_error);
}

// --- plan structure -------------------------------------------------------

TEST(MemPlan, RegionsAreAlignedDisjointAndWithinSlab) {
  TinyMlp m;
  const Bindings bind{{"batch", 16}};
  const ir::OpDag dag = ir::build_op_dag(m.g);
  const MemoryPlan plan = plan_memory(m.g, dag, bind);

  ASSERT_GT(plan.tensors.size(), 0u);
  EXPECT_GE(plan.slab_bytes, plan.liveness_peak_bytes);
  EXPECT_LE(plan.slab_bytes, plan.gross_bytes);
  for (const PlannedTensor& pt : plan.tensors) {
    EXPECT_EQ(pt.offset % kTensorAlignment, 0u) << pt.tensor->name();
    EXPECT_GT(pt.bytes, 0u) << pt.tensor->name();
    EXPECT_LE(pt.offset + pt.bytes, plan.slab_bytes) << pt.tensor->name();
    EXPECT_LE(pt.def, pt.last_use) << pt.tensor->name();
    EXPECT_LT(pt.last_use, dag.order.size()) << pt.tensor->name();
  }
  // The verify pass re-derives interval/alias/edge safety independently.
  EXPECT_EQ(error_count(verify::check_memory_plan(m.g, dag, plan)), 0u);
}

TEST(MemPlan, PlanIsDeterministic) {
  TinyMlp m;
  const Bindings bind{{"batch", 16}};
  const ir::OpDag dag = ir::build_op_dag(m.g);
  const MemoryPlan a = plan_memory(m.g, dag, bind);
  const MemoryPlan b = plan_memory(m.g, dag, bind);
  ASSERT_EQ(a.tensors.size(), b.tensors.size());
  EXPECT_EQ(a.slab_bytes, b.slab_bytes);
  EXPECT_EQ(a.reuse_edges, b.reuse_edges);
  for (std::size_t i = 0; i < a.tensors.size(); ++i) {
    EXPECT_EQ(a.tensors[i].tensor, b.tensors[i].tensor);
    EXPECT_EQ(a.tensors[i].offset, b.tensors[i].offset);
    EXPECT_EQ(a.tensors[i].generation, b.tensors[i].generation);
  }
}

TEST(MemPlan, AliasingFindsInPlaceOpsAndCanBeDisabled) {
  TinyMlp m;
  const Bindings bind{{"batch", 16}};
  const ir::OpDag dag = ir::build_op_dag(m.g);
  const MemoryPlan with = plan_memory(m.g, dag, bind);
  EXPECT_GT(with.alias_count, 0u);  // tanh-after-bias_add chains alias

  MemPlanOptions opt;
  opt.enable_aliasing = false;
  const MemoryPlan without = plan_memory(m.g, dag, bind, opt);
  EXPECT_EQ(without.alias_count, 0u);
  for (const PlannedTensor& pt : without.tensors)
    EXPECT_EQ(pt.alias_root, nullptr) << pt.tensor->name();
  EXPECT_EQ(error_count(verify::check_memory_plan(m.g, dag, without)), 0u);
}

TEST(MemPlan, ReuseEdgesAreForwardAndInRange) {
  TinyMlp m;
  const ir::OpDag dag = ir::build_op_dag(m.g);
  const MemoryPlan plan = plan_memory(m.g, dag, Bindings{{"batch", 16}});
  EXPECT_GT(plan.reuse_edges.size(), 0u);  // slab reuse must exist at b=16
  for (const auto& [from, to] : plan.reuse_edges) {
    EXPECT_LT(from, to);
    EXPECT_LT(to, dag.order.size());
  }
}

// --- negative cases: the verify pass must catch broken plans --------------

TEST(MemPlan, VerifyPassCatchesOverlappingLiveRegions) {
  TinyMlp m;
  const ir::OpDag dag = ir::build_op_dag(m.g);
  MemoryPlan plan = plan_memory(m.g, dag, Bindings{{"batch", 16}});

  // Find two concurrently-live region roots at different addresses and
  // force the second onto the first's offset — a use-after-overwrite bug a
  // planner regression could introduce.
  PlannedTensor* a = nullptr;
  PlannedTensor* b = nullptr;
  for (std::size_t i = 0; i < plan.tensors.size() && b == nullptr; ++i) {
    for (std::size_t j = i + 1; j < plan.tensors.size() && b == nullptr; ++j) {
      PlannedTensor& x = plan.tensors[i];
      PlannedTensor& y = plan.tensors[j];
      const bool live_together = x.def <= y.last_use && y.def <= x.last_use;
      if (x.alias_root == nullptr && y.alias_root == nullptr && live_together &&
          x.offset != y.offset) {
        a = &x;
        b = &y;
      }
    }
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  b->offset = a->offset;
  plan.rebuild_index();
  EXPECT_GT(error_count(verify::check_memory_plan(m.g, dag, plan)), 0u);
}

TEST(MemPlan, VerifyPassCatchesBackwardReuseEdge) {
  TinyMlp m;
  const ir::OpDag dag = ir::build_op_dag(m.g);
  MemoryPlan plan = plan_memory(m.g, dag, Bindings{{"batch", 16}});
  ASSERT_GT(dag.order.size(), 1u);
  plan.reuse_edges.emplace_back(dag.order.size() - 1, 0);  // backward
  EXPECT_GT(error_count(verify::check_memory_plan(m.g, dag, plan)), 0u);
}

// --- end-to-end parity (satellite) ----------------------------------------

TEST(MemPlan, MeasuredPeakEqualsPlannedPeakEqualsFootprintOnAllModels) {
  for (ModelCase& c : builtin_models()) {
    for (const double batch : {2.0, 4.0}) {
      const Bindings bind = c.spec.bind(c.hidden, batch);
      ExecutorOptions opt;
      opt.memory_plan = true;
      Executor ex(*c.spec.graph, bind, opt);
      // Plan the graph the executor actually runs (the fused clone under
      // GF_FUSE=1) so all three peaks below are comparable.
      const ir::Graph& xg = ex.executing_graph();
      const ir::OpDag dag = ir::build_op_dag(xg);
      const MemoryPlan plan = plan_memory(xg, dag, bind);
      EXPECT_EQ(error_count(verify::check_memory_plan(xg, dag, plan)), 0u)
          << c.name << " b=" << batch;

      // Planned slab within alignment padding of the analytic sequential
      // footprint: reuse may not cost memory over per-op liveness freeing.
      const auto fp = ir::minimal_footprint(xg, bind);
      EXPECT_LE(static_cast<double>(plan.planned_peak_bytes()),
                fp.total_bytes +
                    static_cast<double>(kTensorAlignment * plan.tensors.size()))
          << c.name << " b=" << batch;

      ex.run_step();  // weight-gradient steady state
      const ProfileReport report = ex.run_step();
      ASSERT_NE(ex.memory_plan(), nullptr) << c.name;
      EXPECT_EQ(report.peak_allocated_bytes, ex.memory_plan()->planned_peak_bytes())
          << c.name << " b=" << batch;
      EXPECT_EQ(ex.memory_plan()->planned_peak_bytes(), plan.planned_peak_bytes())
          << c.name << " b=" << batch;
    }
  }
}

std::uint32_t loss_bits_after_steps(const models::ModelSpec& spec, double hidden,
                                    bool plan, std::size_t threads, int steps) {
  conc::ThreadPool pool(threads);
  ExecutorOptions opt;
  opt.pool = &pool;
  opt.memory_plan = plan;
  Executor ex(*spec.graph, spec.bind(hidden, 2), opt);
  ex.retain(spec.loss);
  for (int i = 0; i < steps; ++i) ex.run_step();
  std::uint32_t bits = 0;
  std::memcpy(&bits, ex.value(spec.loss).fdata(), sizeof(float));
  return bits;
}

TEST(MemPlan, BitwiseIdenticalToHeapPathAcrossThreadCounts) {
  // Slab reuse, in-place aliasing, and reuse-edge scheduling must not
  // change a single bit of the computation: compare the loss after several
  // training steps against the per-op heap path at 1, 2, and 8 threads.
  // word_lm covers the GEMM/LSTM path, resnet the conv + scatter kernels.
  for (ModelCase& c : builtin_models()) {
    if (std::string(c.name) != "word_lm" && std::string(c.name) != "resnet") continue;
    const std::uint32_t reference =
        loss_bits_after_steps(c.spec, c.hidden, /*plan=*/false, 2, 3);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      EXPECT_EQ(loss_bits_after_steps(c.spec, c.hidden, /*plan=*/true, threads, 3),
                reference)
          << c.name << " threads=" << threads;
    }
  }
}

TEST(MemPlan, SteadyStateStepPerformsNoHeapAllocations) {
  TinyMlp m;
  ExecutorOptions opt;
  opt.memory_plan = true;
  Executor ex(m.g, Bindings{{"batch", 16}}, opt);
  for (int i = 0; i < 3; ++i) ex.run_step();  // slab + grads + scratch warm
  // Min over a few steps: per-thread kernel scratch grows monotonically
  // and may still warm up on whichever pool thread ran cold so far.
  std::size_t min_allocs = std::numeric_limits<std::size_t>::max();
  for (int i = 0; i < 3; ++i) {
    const std::size_t before = aligned_alloc_count();
    ex.run_step();
    min_allocs = std::min(min_allocs, aligned_alloc_count() - before);
  }
  EXPECT_EQ(min_allocs, 0u);
}

TEST(MemPlan, PinnedInputsStayOutOfSlabAndRetainedValuesSurvive) {
  TinyMlp m;
  ExecutorOptions opt;
  opt.memory_plan = true;
  Executor ex(m.g, Bindings{{"batch", 4}}, opt);
  ex.retain(m.loss);
  const Tensor* x = m.g.inputs()[0];
  DenseTensor zeros({4, 6}, ir::DataType::kFloat32);
  ex.set_input(x, std::move(zeros));
  ex.run_step();
  ASSERT_NE(ex.memory_plan(), nullptr);
  // The user owns pinned storage; the plan must leave it out of the slab.
  // Plan entries key the executing graph's tensors (the fused clone's
  // under GF_FUSE=1), so caller-facing tensors go through resolve().
  EXPECT_EQ(ex.memory_plan()->find(ex.resolve(x)), nullptr);
  EXPECT_NE(ex.memory_plan()->find(ex.resolve(m.loss)), nullptr);

  // A retained tensor's storage must survive the whole step even though
  // later ops could otherwise reuse its slab range.
  const float l1 = ex.value(m.loss).f(0);
  EXPECT_TRUE(std::isfinite(l1));

  ExecutorOptions heap_opt;
  heap_opt.memory_plan = false;
  Executor heap_ex(m.g, Bindings{{"batch", 4}}, heap_opt);
  heap_ex.retain(m.loss);
  DenseTensor zeros2({4, 6}, ir::DataType::kFloat32);
  heap_ex.set_input(x, std::move(zeros2));
  heap_ex.run_step();
  EXPECT_EQ(ex.value(m.loss).f(0), heap_ex.value(m.loss).f(0));
}

}  // namespace
}  // namespace gf::rt

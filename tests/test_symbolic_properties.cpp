// Property-based coverage of the symbolic engine: random expressions are
// generated from a seeded PRNG and algebraic invariants are checked over
// parameterized sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/symbolic/expr.h"

namespace gf::sym {
namespace {

/// Deterministic random expression generator over symbols {a, b, c}.
class ExprGen {
 public:
  explicit ExprGen(unsigned seed) : rng_(seed) {}

  Expr gen(int depth) {
    if (depth <= 0) return leaf();
    switch (rng_() % 6) {
      case 0:
        return leaf();
      case 1:
        return gen(depth - 1) + gen(depth - 1);
      case 2:
        return gen(depth - 1) * gen(depth - 1);
      case 3:
        return gen(depth - 1) - gen(depth - 1);
      case 4:
        return pow(gen(depth - 1), Rational(static_cast<int>(rng_() % 3)));
      default:
        return max(gen(depth - 1), gen(depth - 1));
    }
  }

  Bindings random_bindings() {
    std::uniform_real_distribution<double> dist(0.5, 4.0);
    return {{"a", dist(rng_)}, {"b", dist(rng_)}, {"c", dist(rng_)}};
  }

 private:
  Expr leaf() {
    switch (rng_() % 4) {
      case 0:
        return Expr::symbol("a");
      case 1:
        return Expr::symbol("b");
      case 2:
        return Expr::symbol("c");
      default:
        return Expr(static_cast<double>(rng_() % 7) - 3.0);
    }
  }
  std::mt19937 rng_;
};

/// Relative-tolerance comparison robust to large magnitudes.
void expect_close(double actual, double expected) {
  const double tol = 1e-9 * std::max({1.0, std::fabs(actual), std::fabs(expected)});
  EXPECT_NEAR(actual, expected, tol);
}

class SymbolicProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SymbolicProperty, SubstitutionAgreesWithEvaluation) {
  ExprGen gen(GetParam());
  for (int i = 0; i < 20; ++i) {
    const Expr e = gen.gen(4);
    const Bindings bind = gen.random_bindings();
    const Expr substituted = e.subs(bind);
    ASSERT_TRUE(substituted.free_symbols().empty()) << substituted.str();
    expect_close(substituted.eval({}), e.eval(bind));
  }
}

TEST_P(SymbolicProperty, PartialSubstitutionPreservesValue) {
  ExprGen gen(GetParam() + 1000);
  for (int i = 0; i < 20; ++i) {
    const Expr e = gen.gen(4);
    Bindings bind = gen.random_bindings();
    // Bind only "a"; evaluate the rest later.
    const Expr partial = e.subs(Bindings{{"a", bind.at("a")}});
    expect_close(partial.eval(bind), e.eval(bind));
  }
}

TEST_P(SymbolicProperty, AdditionCommutesUnderCanonicalization) {
  ExprGen gen(GetParam() + 2000);
  for (int i = 0; i < 20; ++i) {
    const Expr e1 = gen.gen(3);
    const Expr e2 = gen.gen(3);
    EXPECT_TRUE((e1 + e2).equals(e2 + e1));
    EXPECT_TRUE((e1 * e2).equals(e2 * e1));
  }
}

TEST_P(SymbolicProperty, SelfSubtractionIsZero) {
  ExprGen gen(GetParam() + 3000);
  for (int i = 0; i < 20; ++i) {
    const Expr e = gen.gen(3);
    const Expr diff = e - e;
    ASSERT_TRUE(diff.is_constant()) << diff.str();
    EXPECT_DOUBLE_EQ(diff.constant_value(), 0.0);
  }
}

TEST_P(SymbolicProperty, EvaluationMatchesStrRoundTripSemantics) {
  // str() must be deterministic: identical canonical values render equally.
  ExprGen gen_a(GetParam() + 4000);
  ExprGen gen_b(GetParam() + 4000);
  for (int i = 0; i < 20; ++i) {
    const Expr e1 = gen_a.gen(4);
    const Expr e2 = gen_b.gen(4);
    ASSERT_TRUE(e1.equals(e2));
    EXPECT_EQ(e1.str(), e2.str());
  }
}

TEST_P(SymbolicProperty, DistributivityHoldsNumerically) {
  ExprGen gen(GetParam() + 5000);
  for (int i = 0; i < 10; ++i) {
    const Expr a = gen.gen(2), b = gen.gen(2), c = gen.gen(2);
    const Bindings bind = gen.random_bindings();
    expect_close((a * (b + c)).eval(bind), (a * b + a * c).eval(bind));
  }
}

TEST_P(SymbolicProperty, MaxIsIdempotentAssociativeCommutative) {
  ExprGen gen(GetParam() + 6000);
  for (int i = 0; i < 10; ++i) {
    const Expr a = gen.gen(2), b = gen.gen(2), c = gen.gen(2);
    EXPECT_TRUE(max(a, a).equals(a));
    EXPECT_TRUE(max(a, b).equals(max(b, a)));
    EXPECT_TRUE(max(max(a, b), c).equals(max(a, max(b, c))));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

}  // namespace
}  // namespace gf::sym

// Edge-path coverage: validation failures, rendering corner cases, and
// API misuse that must fail loudly rather than corrupt an analysis.
#include <gtest/gtest.h>

#include <sstream>

#include "src/ir/footprint.h"
#include "src/ir/gradients.h"
#include "src/ir/graph.h"
#include "src/ir/ops.h"
#include "src/ir/serialize.h"
#include "src/util/table.h"

namespace gf {
namespace {

using sym::Expr;

TEST(GraphValidate, RejectsOrphanActivation) {
  ir::Graph g("bad");
  g.make_tensor("floating", ir::TensorShape{Expr(4)}, ir::DataType::kFloat32,
                ir::TensorRole::kActivation);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(GraphValidate, AcceptsProducerlessStateRoles) {
  ir::Graph g("ok");
  g.make_tensor("seed", ir::TensorShape{}, ir::DataType::kFloat32,
                ir::TensorRole::kGradient);
  g.make_tensor("slot", ir::TensorShape{Expr(4)}, ir::DataType::kFloat32,
                ir::TensorRole::kOptimizerState);
  EXPECT_NO_THROW(g.validate());
}

TEST(TensorShape, EvalRejectsNonIntegerAndNonPositive) {
  const ir::TensorShape fractional{Expr::symbol("h") / Expr(3)};
  EXPECT_THROW(fractional.eval({{"h", 4.0}}), std::runtime_error);
  EXPECT_NO_THROW(fractional.eval({{"h", 9.0}}));
  const ir::TensorShape negative{Expr::symbol("h") - Expr(10)};
  EXPECT_THROW(negative.eval({{"h", 4.0}}), std::runtime_error);
}

TEST(Tensor, SecondProducerIsRejected) {
  ir::Graph g("t");
  ir::Tensor* x = g.add_input("x", {Expr(4), Expr(4)});
  ir::Tensor* w = g.add_weight("w", {Expr(4), Expr(4)});
  ir::Tensor* y = ir::matmul(g, "m", x, w);
  EXPECT_THROW(y->set_producer(y->producer()), std::logic_error);
}

TEST(Gradients, SecondTrainingStepBuildIsRejectedByStructure) {
  // Building a second backward pass over a graph that already contains
  // non-differentiable gradient ops must throw, not silently double-count.
  ir::Graph g("t");
  ir::Tensor* x = g.add_input("x", {Expr(2), Expr(3)});
  ir::Tensor* w = g.add_weight("w", {Expr(3), Expr(4)});
  ir::Tensor* labels = g.add_input("labels", {Expr(2)}, ir::DataType::kInt32);
  auto [rows, probs] = ir::softmax_xent(g, "xent", ir::matmul(g, "m", x, w), labels);
  (void)probs;
  ir::Tensor* loss = ir::reduce_mean(g, "loss", rows);
  ir::build_training_step(g, loss);
  EXPECT_THROW(ir::build_training_step(g, loss), std::logic_error);
}

TEST(Footprint, ThrowsOnUnboundSymbols) {
  ir::Graph g("t");
  ir::Tensor* x = g.add_input("x", {Expr::symbol("batch"), Expr(3)});
  ir::Tensor* w = g.add_weight("w", {Expr(3), Expr(4)});
  ir::matmul(g, "m", x, w);
  EXPECT_THROW(ir::minimal_footprint(g, {}), std::runtime_error);
}

TEST(ExprPrinting, QuotientsAndMaxRender) {
  const Expr a = Expr::symbol("a"), b = Expr::symbol("b"), c = Expr::symbol("c");
  EXPECT_EQ((a / (b * c)).str(), "a/(b*c)");
  EXPECT_EQ((Expr(1) / a).str(), "1/a");
  EXPECT_EQ(sym::max(a, b + c).str(), "max(b + c, a)");  // canonical child order
  EXPECT_EQ((Expr(-2) * a).str(), "-2*a");
  EXPECT_EQ(sym::log(a * b).str(), "log(a*b)");
}

TEST(ExprPrinting, NegativeExponentEvaluates) {
  const Expr e = sym::pow(Expr::symbol("x"), sym::Rational(-2));
  EXPECT_DOUBLE_EQ(e.eval({{"x", 4.0}}), 1.0 / 16.0);
}

TEST(Serializer, RejectsBadRoleAndDtype) {
  EXPECT_THROW(ir::deserialize(std::string("graph g\ntensor 0 banana f32 x 4")),
               std::invalid_argument);
  EXPECT_THROW(ir::deserialize(std::string("graph g\ntensor 0 input f99 x 4")),
               std::invalid_argument);
  EXPECT_THROW(ir::deserialize(std::string("graph g\nretag 7 weight")),
               std::invalid_argument);
}

TEST(Serializer, PreservesIntAndHalfDtypes) {
  ir::Graph g("dtypes");
  g.add_input("ids", {Expr(4)}, ir::DataType::kInt32);
  ir::Tensor* w16 = g.add_weight("w16", {Expr(8)}, ir::DataType::kFloat16);
  (void)w16;
  const auto loaded = ir::deserialize(ir::serialize(g));
  EXPECT_EQ(loaded->inputs()[0]->dtype(), ir::DataType::kInt32);
  EXPECT_EQ(loaded->weights()[0]->dtype(), ir::DataType::kFloat16);
}

TEST(Table, SetAlignLeftJustifies) {
  util::Table t({"k", "v"});
  t.set_align(1, util::Align::kLeft);
  t.add_row({"a", "1"});
  t.add_row({"bb", "22"});
  std::ostringstream os;
  t.print(os);
  // Left-aligned value column: "1 " padded on the right.
  EXPECT_NE(os.str().find("| 1 "), std::string::npos);
}

TEST(Ops, SplitRequiresDivisibleAxis) {
  ir::Graph g("t");
  ir::Tensor* x = g.add_input("x", {Expr(4), Expr(9)});
  auto parts = ir::split(g, "s", x, 1, 3);  // 9/3 = 3, fine
  EXPECT_EQ(parts.size(), 3u);
  // Non-divisible splits surface at eval time via the fractional dim.
  auto bad = ir::split(g, "s2", x, 1, 2);
  EXPECT_THROW(bad[0]->shape().eval({}), std::runtime_error);
}

TEST(Ops, MaxArityAndAxisChecks) {
  ir::Graph g("t");
  ir::Tensor* x = g.add_input("x", {Expr(4)});
  EXPECT_THROW(ir::concat(g, "c", {x}, 0), std::invalid_argument);  // needs >= 2
  ir::Tensor* y = g.add_input("y", {Expr(4)});
  EXPECT_THROW(ir::concat(g, "c2", {x, y}, 3), std::invalid_argument);  // bad axis
}

}  // namespace
}  // namespace gf

// Scaling-law tests: power-law mechanics (Figure 6 regions), Table 1
// constants, and frontier projections versus the paper's published scales.
#include <gtest/gtest.h>

#include <cmath>

#include "src/scaling/projection.h"

namespace gf::scaling {
namespace {

TEST(LearningCurve, ErrorAndInverseRoundTrip) {
  LearningCurve c{.alpha = 13.0, .beta_g = -0.066};
  for (double m : {1e6, 1e8, 1e10}) {
    const double err = c.error_at(m);
    EXPECT_NEAR(c.samples_for_error(err), m, 1e-6 * m);
  }
}

TEST(LearningCurve, ErrorDecreasesMonotonically) {
  LearningCurve c{.alpha = 9.39, .beta_g = -0.092};
  double prev = c.error_at(1e3);
  for (double m = 1e4; m < 1e13; m *= 10) {
    const double e = c.error_at(m);
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(LearningCurve, BestGuessPlateauClips) {
  LearningCurve c{.alpha = 10.0, .beta_g = -0.5, .best_guess_error = 2.0};
  EXPECT_DOUBLE_EQ(c.error_at(1.0), 2.0);  // 10*1^-0.5 = 10 clipped to 2
  EXPECT_LT(c.error_at(1e6), 2.0);
  EXPECT_EQ(c.region_at(1.0), LearningCurve::Region::kSmallData);
}

TEST(LearningCurve, IrreducibleFloor) {
  LearningCurve c{.alpha = 10.0, .beta_g = -0.5, .irreducible_error = 0.5};
  EXPECT_GT(c.error_at(1e12), 0.5);
  EXPECT_NEAR(c.error_at(1e18), 0.5, 1e-4);
  EXPECT_EQ(c.region_at(1e18), LearningCurve::Region::kIrreducible);
  EXPECT_EQ(c.region_at(1e2), LearningCurve::Region::kPowerLaw);
  EXPECT_THROW(c.samples_for_error(0.4), std::domain_error);
}

TEST(LearningCurve, ValidatesExponentRange) {
  LearningCurve bad{.alpha = 1.0, .beta_g = 0.1};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  LearningCurve bad2{.alpha = -1.0, .beta_g = -0.1};
  EXPECT_THROW(bad2.validate(), std::invalid_argument);
}

TEST(ModelSizeCurve, SublinearGrowth) {
  ModelSizeCurve c{.sigma = 9.4e-4, .beta_p = 0.68};
  // Growing data 100x grows the model 100^0.68 ~ 23x (Table 1 word LMs).
  EXPECT_NEAR(c.scale_for_data_scale(100.0), 23.0, 0.5);
  EXPECT_LT(c.scale_for_data_scale(1000.0), 1000.0);
  ModelSizeCurve bad{.sigma = 1.0, .beta_p = 1.2};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(DomainTable, HasFiveValidatedDomains) {
  const auto& table = domain_table();
  ASSERT_EQ(table.size(), 5u);
  for (const auto& d : table) {
    EXPECT_GT(d.current_samples, 0) << d.metric;
    EXPECT_LT(d.desired_sota_error, d.current_sota_error) << d.metric;
    EXPECT_NO_THROW(d.curve.validate());
    EXPECT_NO_THROW(d.size_curve.validate());
  }
  EXPECT_THROW(domain_scaling(static_cast<models::Domain>(99)), std::invalid_argument);
}

TEST(DomainTable, FittedCurrentErrorNearReportedSota) {
  // alpha * m^beta_g should land near the reported current SOTA (the
  // published constants are rounded, so allow ~10%).
  for (const auto& d : domain_table()) {
    const double fitted = fitted_current_error(d);
    const double reported = d.curve_error(d.current_sota_error);
    EXPECT_NEAR(fitted, reported, 0.10 * reported) << models::domain_name(d.domain);
  }
}

TEST(Projection, WordLmMatchesPaperScales) {
  const auto p = project_frontier(domain_scaling(models::Domain::kWordLM));
  EXPECT_NEAR(p.data_scale, 100.0, 10.0);     // paper: 100x
  EXPECT_NEAR(p.model_scale, 23.0, 2.0);      // paper: 23x
  EXPECT_NEAR(p.target_params, 23.8e9, 3e9);  // paper: 23.8B
}

TEST(Projection, NmtMatchesPaperScales) {
  const auto p = project_frontier(domain_scaling(models::Domain::kNMT));
  EXPECT_NEAR(p.data_scale, 750.0, 40.0);
  EXPECT_NEAR(p.model_scale, 90.0, 5.0);
  EXPECT_NEAR(p.target_params, 18.9e9, 2e9);
}

TEST(Projection, ImageMatchesPaperScales) {
  const auto p = project_frontier(domain_scaling(models::Domain::kImage));
  EXPECT_NEAR(p.data_scale, 81.0, 5.0);
  EXPECT_NEAR(p.model_scale, 12.0, 1.0);
  EXPECT_NEAR(p.target_params, 732e6, 80e6);
}

TEST(Projection, CharLmReproducesDirectionally) {
  // The paper's published alpha/beta_g/sigma for char LMs are internally
  // inconsistent with its own Table 3 (see EXPERIMENTS.md); the projection
  // from the printed constants lands at ~836x data (paper prints 971x).
  const auto p = project_frontier(domain_scaling(models::Domain::kCharLM));
  EXPECT_GT(p.data_scale, 500.0);
  EXPECT_LT(p.data_scale, 1200.0);
  EXPECT_GT(p.model_scale, 300.0);
}

TEST(Projection, SpeechReproducesDirectionally) {
  // Same caveat: printed beta_g = -0.291 yields ~20x (paper prints 33x).
  const auto p = project_frontier(domain_scaling(models::Domain::kSpeech));
  EXPECT_GT(p.data_scale, 10.0);
  EXPECT_LT(p.data_scale, 40.0);
  EXPECT_LT(p.model_scale, 10.0);  // smallest model growth of all domains
}

TEST(Projection, OrderingMatchesPaper) {
  // Language domains need the most data/model growth; speech the least
  // model growth — the paper's headline segmentation.
  const auto word = project_frontier(domain_scaling(models::Domain::kWordLM));
  const auto chr = project_frontier(domain_scaling(models::Domain::kCharLM));
  const auto nmt = project_frontier(domain_scaling(models::Domain::kNMT));
  const auto speech = project_frontier(domain_scaling(models::Domain::kSpeech));
  const auto image = project_frontier(domain_scaling(models::Domain::kImage));
  EXPECT_GT(chr.model_scale, nmt.model_scale);
  EXPECT_GT(nmt.model_scale, word.model_scale);
  EXPECT_GT(word.model_scale, image.model_scale);
  EXPECT_GT(image.model_scale, speech.model_scale);
  // Target params: language models in the tens/hundreds of billions,
  // speech/image sub-billion.
  EXPECT_GT(word.target_params, 1e10);
  EXPECT_LT(speech.target_params, 1e9);
  EXPECT_LT(image.target_params, 1e9);
}

}  // namespace
}  // namespace gf::scaling

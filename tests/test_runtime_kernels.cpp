// Numeric kernel unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "src/runtime/kernels.h"

namespace gf::rt {
namespace {

conc::ThreadPool& pool() {
  static conc::ThreadPool p(4);
  return p;
}

DenseTensor filled(std::vector<std::int64_t> shape, std::vector<float> data) {
  DenseTensor t(std::move(shape), ir::DataType::kFloat32);
  for (std::size_t i = 0; i < data.size(); ++i) t.f(static_cast<std::int64_t>(i)) = data[i];
  return t;
}

DenseTensor ints(std::vector<std::int64_t> shape, std::vector<std::int32_t> data) {
  DenseTensor t(std::move(shape), ir::DataType::kInt32);
  for (std::size_t i = 0; i < data.size(); ++i) t.i32(static_cast<std::int64_t>(i)) = data[i];
  return t;
}

TEST(MatmulKernel, Small2x2) {
  const DenseTensor a = filled({2, 2}, {1, 2, 3, 4});
  const DenseTensor b = filled({2, 2}, {5, 6, 7, 8});
  DenseTensor out({2, 2}, ir::DataType::kFloat32);
  KernelStats stats;
  matmul(a, b, out, false, false, pool(), stats);
  EXPECT_FLOAT_EQ(out.f(0), 19);
  EXPECT_FLOAT_EQ(out.f(1), 22);
  EXPECT_FLOAT_EQ(out.f(2), 43);
  EXPECT_FLOAT_EQ(out.f(3), 50);
  EXPECT_DOUBLE_EQ(stats.flops, 16.0);
}

TEST(MatmulKernel, TransposeFlagsAgree) {
  // (A^T B^T) computed with flags equals computing from materialized
  // transposes.
  const DenseTensor a = filled({3, 2}, {1, 2, 3, 4, 5, 6});     // A^T is 2x3
  const DenseTensor b = filled({4, 3}, {1, 0, 2, 0, 1, 0, 3, 1, 0, 2, 0, 1});  // B^T 3x4
  DenseTensor out({2, 4}, ir::DataType::kFloat32);
  KernelStats stats;
  matmul(a, b, out, true, true, pool(), stats);

  const DenseTensor at = filled({2, 3}, {1, 3, 5, 2, 4, 6});
  const DenseTensor bt = filled({3, 4}, {1, 0, 3, 2, 0, 1, 1, 0, 2, 0, 0, 1});
  DenseTensor expected({2, 4}, ir::DataType::kFloat32);
  matmul(at, bt, expected, false, false, pool(), stats);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(out.f(i), expected.f(i)) << i;
}

TEST(MatmulKernel, BatchedBroadcastsSharedWeights) {
  const DenseTensor a = filled({2, 1, 2}, {1, 2, 3, 4});  // two (1x2) rows
  const DenseTensor w = filled({2, 2}, {1, 0, 0, 1});     // identity
  DenseTensor out({2, 1, 2}, ir::DataType::kFloat32);
  KernelStats stats;
  matmul(a, w, out, false, false, pool(), stats);
  EXPECT_FLOAT_EQ(out.f(0), 1);
  EXPECT_FLOAT_EQ(out.f(1), 2);
  EXPECT_FLOAT_EQ(out.f(2), 3);
  EXPECT_FLOAT_EQ(out.f(3), 4);
}

TEST(Conv2dKernel, IdentityKernelCopiesCenter) {
  // 3x3 kernel with 1 at center == identity under same padding.
  DenseTensor in({1, 3, 3, 1}, ir::DataType::kFloat32);
  for (int i = 0; i < 9; ++i) in.f(i) = static_cast<float>(i + 1);
  DenseTensor f({3, 3, 1, 1}, ir::DataType::kFloat32);
  f.f(4) = 1.0f;  // center tap
  DenseTensor out({1, 3, 3, 1}, ir::DataType::kFloat32);
  KernelStats stats;
  conv2d(in, f, out, 1, pool(), stats);
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(out.f(i), in.f(i)) << i;
}

TEST(Conv2dKernel, StrideSubsamples) {
  DenseTensor in({1, 4, 4, 1}, ir::DataType::kFloat32);
  for (int i = 0; i < 16; ++i) in.f(i) = static_cast<float>(i);
  DenseTensor f({1, 1, 1, 1}, ir::DataType::kFloat32);
  f.f(0) = 2.0f;
  DenseTensor out({1, 2, 2, 1}, ir::DataType::kFloat32);
  KernelStats stats;
  conv2d(in, f, out, 2, pool(), stats);
  EXPECT_FLOAT_EQ(out.f(0), 0);
  EXPECT_FLOAT_EQ(out.f(1), 4);
  EXPECT_FLOAT_EQ(out.f(2), 16);
  EXPECT_FLOAT_EQ(out.f(3), 20);
}

TEST(SoftmaxKernel, RowsSumToOne) {
  const DenseTensor logits = filled({2, 3}, {1, 2, 3, -1, 0, 1});
  DenseTensor out({2, 3}, ir::DataType::kFloat32);
  KernelStats stats;
  softmax(logits, out, pool(), stats);
  for (int r = 0; r < 2; ++r) {
    float sum = 0;
    for (int c = 0; c < 3; ++c) {
      sum += out.f(r * 3 + c);
      EXPECT_GT(out.f(r * 3 + c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  // Shift invariance: both rows are shifted copies -> equal distributions.
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(out.f(c), out.f(3 + c), 1e-6f);
}

TEST(SoftmaxXentKernel, LossIsNegLogProb) {
  const DenseTensor logits = filled({1, 2}, {0, 0});
  const DenseTensor labels = ints({1}, {1});
  DenseTensor loss({1}, ir::DataType::kFloat32);
  DenseTensor probs({1, 2}, ir::DataType::kFloat32);
  KernelStats stats;
  softmax_xent(logits, labels, loss, probs, pool(), stats);
  EXPECT_NEAR(loss.f(0), std::log(2.0f), 1e-6f);
}

TEST(PoolKernel, MaxAndAvg) {
  DenseTensor in({1, 2, 2, 1}, ir::DataType::kFloat32);
  in.f(0) = 1;
  in.f(1) = 5;
  in.f(2) = 3;
  in.f(3) = 2;
  DenseTensor out({1, 1, 1, 1}, ir::DataType::kFloat32);
  KernelStats stats;
  pool(ir::PoolKind::kMax, in, out, 2, 2, pool(), stats);
  EXPECT_FLOAT_EQ(out.f(0), 5);
  pool(ir::PoolKind::kAvg, in, out, 2, 2, pool(), stats);
  EXPECT_FLOAT_EQ(out.f(0), 2.75f);
}

TEST(PoolGradKernel, MaxRoutesToArgmax) {
  DenseTensor in({1, 2, 2, 1}, ir::DataType::kFloat32);
  in.f(0) = 1;
  in.f(1) = 5;
  in.f(2) = 3;
  in.f(3) = 2;
  DenseTensor out({1, 1, 1, 1}, ir::DataType::kFloat32);
  KernelStats stats;
  pool(ir::PoolKind::kMax, in, out, 2, 2, pool(), stats);
  DenseTensor dy({1, 1, 1, 1}, ir::DataType::kFloat32);
  dy.f(0) = 7;
  DenseTensor dx({1, 2, 2, 1}, ir::DataType::kFloat32);
  pool_grad(ir::PoolKind::kMax, in, out, dy, dx, 2, 2, pool(), stats);
  EXPECT_FLOAT_EQ(dx.f(0), 0);
  EXPECT_FLOAT_EQ(dx.f(1), 7);
  EXPECT_FLOAT_EQ(dx.f(2), 0);
  EXPECT_FLOAT_EQ(dx.f(3), 0);
}

TEST(BatchNormKernel, NormalizesToZeroMeanUnitVar) {
  DenseTensor in({4, 1}, ir::DataType::kFloat32);
  in.f(0) = 2;
  in.f(1) = 4;
  in.f(2) = 6;
  in.f(3) = 8;
  DenseTensor scale = filled({1}, {1});
  DenseTensor shift = filled({1}, {0});
  DenseTensor out({4, 1}, ir::DataType::kFloat32);
  KernelStats stats;
  batch_norm(in, scale, shift, out, pool(), stats);
  float mean = 0, var = 0;
  for (int i = 0; i < 4; ++i) mean += out.f(i) / 4;
  for (int i = 0; i < 4; ++i) var += out.f(i) * out.f(i) / 4;
  EXPECT_NEAR(mean, 0.0f, 1e-5f);
  EXPECT_NEAR(var, 1.0f, 1e-3f);
}

TEST(EmbeddingKernels, LookupAndScatterRoundTrip) {
  const DenseTensor table = filled({3, 2}, {10, 11, 20, 21, 30, 31});
  const DenseTensor ids = ints({2}, {2, 0});
  DenseTensor out({2, 2}, ir::DataType::kFloat32);
  KernelStats stats;
  embedding_lookup(table, ids, out, pool(), stats);
  EXPECT_FLOAT_EQ(out.f(0), 30);
  EXPECT_FLOAT_EQ(out.f(3), 11);

  const DenseTensor dy = filled({2, 2}, {1, 2, 3, 4});
  DenseTensor dtable({3, 2}, ir::DataType::kFloat32);
  embedding_grad(ids, dy, dtable, pool(), stats);
  EXPECT_FLOAT_EQ(dtable.f(0), 3);  // row 0 from second lookup
  EXPECT_FLOAT_EQ(dtable.f(1), 4);
  EXPECT_FLOAT_EQ(dtable.f(2), 0);  // row 1 untouched
  EXPECT_FLOAT_EQ(dtable.f(4), 1);  // row 2 from first lookup
}

TEST(ConcatSplitKernels, RoundTrip) {
  const DenseTensor a = filled({2, 2}, {1, 2, 5, 6});
  const DenseTensor b = filled({2, 2}, {3, 4, 7, 8});
  DenseTensor cat({2, 4}, ir::DataType::kFloat32);
  KernelStats stats;
  concat({&a, &b}, 1, cat, pool(), stats);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(cat.f(i), static_cast<float>(i + 1));

  DenseTensor p0({2, 2}, ir::DataType::kFloat32), p1({2, 2}, ir::DataType::kFloat32);
  split(cat, 1, {&p0, &p1}, pool(), stats);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(p0.f(i), a.f(i));
    EXPECT_FLOAT_EQ(p1.f(i), b.f(i));
  }
}

TEST(SliceKernel, ExtractsOffsetRegion) {
  const DenseTensor in = filled({1, 4}, {1, 2, 3, 4});
  DenseTensor out({1, 2}, ir::DataType::kFloat32);
  KernelStats stats;
  slice(in, 1, 1, out, pool(), stats);
  EXPECT_FLOAT_EQ(out.f(0), 2);
  EXPECT_FLOAT_EQ(out.f(1), 3);
}

TEST(ReduceBroadcastKernels, SumMeanAndBack) {
  const DenseTensor in = filled({2, 2}, {1, 2, 3, 4});
  DenseTensor sum({2}, ir::DataType::kFloat32);
  KernelStats stats;
  reduce(ir::ReduceKind::kSum, in, sum, pool(), stats);
  EXPECT_FLOAT_EQ(sum.f(0), 4);  // column sums (leading axes reduced)
  EXPECT_FLOAT_EQ(sum.f(1), 6);

  DenseTensor back({2, 2}, ir::DataType::kFloat32);
  broadcast(sum, back, pool(), stats);
  EXPECT_FLOAT_EQ(back.f(0), 4);
  EXPECT_FLOAT_EQ(back.f(2), 4);
  EXPECT_FLOAT_EQ(back.f(3), 6);
}

TEST(ApplyGradientKernel, SgdStep) {
  DenseTensor w = filled({2}, {1.0f, 2.0f});
  const DenseTensor g = filled({2}, {10.0f, -10.0f});
  KernelStats stats;
  apply_gradient(ir::Optimizer::kSGD, w, g, {}, 0.1, pool(), stats);
  EXPECT_FLOAT_EQ(w.f(0), 0.0f);
  EXPECT_FLOAT_EQ(w.f(1), 3.0f);
}

TEST(ApplyGradientKernel, MomentumAccumulates) {
  DenseTensor w = filled({1}, {0.0f});
  const DenseTensor g = filled({1}, {1.0f});
  DenseTensor v = DenseTensor::zeros({1});
  KernelStats stats;
  apply_gradient(ir::Optimizer::kMomentum, w, g, {&v}, 1.0, pool(), stats);
  EXPECT_FLOAT_EQ(w.f(0), -1.0f);
  apply_gradient(ir::Optimizer::kMomentum, w, g, {&v}, 1.0, pool(), stats);
  EXPECT_FLOAT_EQ(w.f(0), -2.9f);  // v = 1.9 on the second step
}

}  // namespace
}  // namespace gf::rt

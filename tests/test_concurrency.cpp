#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/concurrency/barrier.h"
#include "src/concurrency/thread_pool.h"

namespace gf::conc {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit({}), std::invalid_argument);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, GaugesTrackQueueAndBusyWorkers) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.busy_workers(), 0u);

  // Park both workers, then queue more work than the pool can start:
  // the surplus must be visible in queue_depth while the gate is closed.
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  for (int i = 0; i < 2; ++i)
    pool.submit([&] {
      started.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  while (started.load() < 2) std::this_thread::yield();
  EXPECT_EQ(pool.busy_workers(), 2u);

  for (int i = 0; i < 5; ++i) pool.submit([] {});
  EXPECT_EQ(pool.queue_depth(), 5u);

  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.busy_workers(), 0u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, ComputesParallelSum) {
  ThreadPool pool(8);
  const std::size_t n = 100000;
  std::atomic<long long> sum{0};
  parallel_for(pool, 1, n + 1, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n + 1) / 2);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 1000,
                   [&](std::size_t i) {
                     if (i == 500) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, HonorsMinChunkForSmallRanges) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 3, [&](std::size_t) { count.fetch_add(1); }, 16);
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, NestedOuterSerialInnerParallel) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int outer = 0; outer < 4; ++outer)
    parallel_for(pool, 0, 100, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 400);
}

// Regression: a throwing task used to escape worker_loop and call
// std::terminate. Now the first exception is captured and rethrown from the
// next wait_idle(), which also clears it; the pool keeps running.
TEST(ThreadPool, SubmitExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 8; ++i) pool.submit([&] { ran.fetch_add(1); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // other tasks still ran
  // The error was consumed; the pool is clean and usable.
  pool.submit([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, OnlyFirstSubmitErrorIsKept) {
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");  // single-worker pool: deterministic order
  }
  pool.wait_idle();  // cleared: no rethrow
}

TEST(ThreadPool, CurrentWorkerIndexIdentifiesPoolThreads) {
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);  // main thread
  ThreadPool pool(3);
  std::vector<std::atomic<int>> seen(3);
  for (auto& s : seen) s.store(0);
  for (int i = 0; i < 64; ++i)
    pool.submit([&] {
      const int w = ThreadPool::current_worker_index();
      ASSERT_GE(w, 0);
      ASSERT_LT(w, 3);
      seen[static_cast<std::size_t>(w)].fetch_add(1);
    });
  pool.wait_idle();
  int total = 0;
  for (auto& s : seen) total += s.load();
  EXPECT_EQ(total, 64);
}

TEST(ParallelFor, ExceptionInFirstChunkStillRunsToCompletion) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(pool, 0, 1000,
                            [&](std::size_t i) {
                              if (i == 0) throw std::runtime_error("first chunk");
                              ran.fetch_add(1);
                            }),
               std::runtime_error);
  // Iterations other than the throwing chunk's remainder still completed;
  // the pool has no stuck helpers.
  EXPECT_GT(ran.load(), 0);
  pool.wait_idle();
}

TEST(ParallelFor, ExceptionInLastChunkPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 1000,
                            [&](std::size_t i) {
                              if (i == 999) throw std::runtime_error("last chunk");
                            }),
               std::runtime_error);
  std::atomic<int> ok{0};
  parallel_for(pool, 0, 16, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 16);
}

// The wavefront executor runs whole ops as pool tasks and those ops call
// parallel_for on the same pool. With the old task-count completion
// protocol this deadlocked whenever every worker was inside a region
// waiting for its own helper tasks; the iteration-count protocol lets the
// calling worker drain the region alone.
TEST(ParallelFor, NestedInsidePoolTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<long long> sum{0};
  for (int t = 0; t < 8; ++t)
    pool.submit([&] {
      parallel_for(pool, 0, 1000, [&](std::size_t i) {
        sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
      });
    });
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 8LL * (999 * 1000 / 2));
}

TEST(ParallelFor, NestedInsidePoolTaskSingleWorker) {
  // The degenerate case: one worker, which must finish the whole region
  // itself since no other thread can ever pick up the helper task.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.submit([&] { parallel_for(pool, 0, 100, [&](std::size_t) { count.fetch_add(1); }); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, NestedParallelForInsideParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 16, [&](std::size_t) {
    parallel_for(pool, 0, 64, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16 * 64);
}

TEST(ParallelFor, NestedExceptionPropagatesToOuterCaller) {
  ThreadPool pool(2);
  std::atomic<int> outer_failures{0};
  parallel_for(pool, 0, 4, [&](std::size_t) {
    try {
      parallel_for(pool, 0, 8, [&](std::size_t j) {
        if (j == 3) throw std::runtime_error("inner");
      });
    } catch (const std::runtime_error&) {
      outer_failures.fetch_add(1);
    }
  });
  EXPECT_EQ(outer_failures.load(), 4);
}

TEST(Barrier, RejectsZeroParticipants) {
  EXPECT_THROW(Barrier barrier(0), std::invalid_argument);
}

TEST(Barrier, SingleParticipantNeverBlocks) {
  Barrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
  EXPECT_EQ(barrier.participants(), 1u);
}

// The sense-reversing core: one Barrier object must be reusable across
// many generations, and a crossing must order memory — plain (non-atomic)
// writes made before generation g are visible to every thread after it.
TEST(Barrier, ReusableAcrossGenerationsWithVisibility) {
  constexpr int kThreads = 4;
  constexpr int kGenerations = 500;
  Barrier barrier(kThreads);
  std::vector<int> slots(kThreads, -1);
  std::atomic<int> mismatches{0};
  auto body = [&](int idx) {
    for (int gen = 0; gen < kGenerations; ++gen) {
      slots[static_cast<std::size_t>(idx)] = gen;
      barrier.arrive_and_wait();
      for (int t = 0; t < kThreads; ++t)
        if (slots[static_cast<std::size_t>(t)] != gen) mismatches.fetch_add(1);
      barrier.arrive_and_wait();  // nobody advances to gen+1 until all checked
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(body, t);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Barrier, AbortWakesBlockedWaiters) {
  Barrier barrier(3);  // never completes: only 2 threads arrive
  std::atomic<int> thrown{0};
  auto body = [&] {
    try {
      barrier.arrive_and_wait();
    } catch (const std::runtime_error&) {
      thrown.fetch_add(1);
    }
  };
  std::thread a(body);
  std::thread b(body);
  // Give both a chance to block, then break the gang.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  barrier.abort();
  a.join();
  b.join();
  EXPECT_EQ(thrown.load(), 2);
  EXPECT_TRUE(barrier.aborted());
  // Once broken, always broken: later arrivals throw immediately.
  EXPECT_THROW(barrier.arrive_and_wait(), std::runtime_error);
}

}  // namespace
}  // namespace gf::conc

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/concurrency/thread_pool.h"

namespace gf::conc {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit({}), std::invalid_argument);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, ComputesParallelSum) {
  ThreadPool pool(8);
  const std::size_t n = 100000;
  std::atomic<long long> sum{0};
  parallel_for(pool, 1, n + 1, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n + 1) / 2);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 1000,
                   [&](std::size_t i) {
                     if (i == 500) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, HonorsMinChunkForSmallRanges) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(pool, 0, 3, [&](std::size_t) { count.fetch_add(1); }, 16);
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, NestedOuterSerialInnerParallel) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int outer = 0; outer < 4; ++outer)
    parallel_for(pool, 0, 100, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 400);
}

}  // namespace
}  // namespace gf::conc

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "src/util/format.h"
#include "src/util/least_squares.h"
#include "src/util/table.h"

namespace gf::util {
namespace {

TEST(Format, SigTrimsTrailingZeros) {
  EXPECT_EQ(format_sig(1.5), "1.5");
  EXPECT_EQ(format_sig(100.0), "100");
  EXPECT_EQ(format_sig(0.0), "0");
  EXPECT_EQ(format_sig(2.0), "2");
}

TEST(Format, SigUsesScientificForExtremes) {
  EXPECT_EQ(format_sig(1.23e12, 3), "1.23e+12");
  EXPECT_EQ(format_sig(1.2e-7, 2), "1.2e-07");
}

TEST(Format, Si) {
  EXPECT_EQ(format_si(950.0), "950");
  EXPECT_EQ(format_si(1500.0), "1.50K");
  EXPECT_EQ(format_si(2.5e9), "2.50G");
  EXPECT_EQ(format_si(1.444e15), "1.44P");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(272e9), "272.0 GB");
  EXPECT_EQ(format_bytes(41.5e12), "41.5 TB");
}

TEST(Format, Duration) {
  EXPECT_EQ(format_duration(115.0), "115.0 s");
  EXPECT_EQ(format_duration(0.002), "2.0 ms");
  EXPECT_EQ(format_duration(86400.0 * 10), "10.0 days");
  EXPECT_EQ(format_duration(86400.0 * 365.25 * 84.0, 0), "84 years");
}

TEST(Format, Grouped) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(1000), "1,000");
  EXPECT_EQ(format_grouped(23800000000ull), "23,800,000,000");
}

TEST(Format, ScaleAndPercent) {
  EXPECT_EQ(format_scale(971.0), "971x");
  EXPECT_EQ(format_scale(6.6), "6.6x");
  EXPECT_EQ(format_percent(0.145), "14.5%");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"Domain", "Scale"});
  t.add_row({"Word LMs", "100x"});
  t.add_row({"Char LMs", "971x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Domain"), std::string::npos);
  EXPECT_NE(out.find("971x"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvSkipsSeparators) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(LeastSquares, LineRecoversExactCoefficients) {
  std::vector<double> xs{1, 2, 3, 4, 5}, ys;
  for (double x : xs) ys.push_back(3.5 * x - 2.0);
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 3.5, 1e-12);
  EXPECT_NEAR(f.intercept, -2.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LeastSquares, ProportionalFit) {
  std::vector<double> xs{1, 2, 4}, ys{2.0, 4.0, 8.0};
  EXPECT_NEAR(fit_proportional(xs, ys), 2.0, 1e-12);
}

TEST(LeastSquares, PowerLawRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 1e6; x <= 1e9; x *= 10) {
    xs.push_back(x);
    ys.push_back(13.0 * std::pow(x, -0.066));
  }
  const PowerLawFit f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.a, 13.0, 1e-9);
  EXPECT_NEAR(f.b, -0.066, 1e-12);
}

TEST(LeastSquares, GeneralSolverTwoColumns) {
  // y = 4*x0 + 7*x1 over a few rows.
  std::vector<double> a{1, 1, 2, 1, 3, 5, 4, 2, 5, 9};
  std::vector<double> y;
  for (std::size_t r = 0; r < 5; ++r) y.push_back(4 * a[2 * r] + 7 * a[2 * r + 1]);
  const auto c = solve_least_squares(a, 2, y);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 4.0, 1e-9);
  EXPECT_NEAR(c[1], 7.0, 1e-9);
}

TEST(LeastSquares, RejectsDegenerateInput) {
  std::vector<double> xs{1.0}, ys{2.0};
  EXPECT_THROW(fit_line(xs, ys), std::invalid_argument);
  std::vector<double> same{2, 2, 2}, any{1, 2, 3};
  EXPECT_THROW(fit_line(same, any), std::invalid_argument);
  std::vector<double> neg{-1, 2}, pos{1, 2};
  EXPECT_THROW(fit_power_law(neg, pos), std::invalid_argument);
}

}  // namespace
}  // namespace gf::util

// GRU-vs-LSTM cell ablation and checkpointing-model tests, plus toy
// training convergence for the remaining model families (the executor must
// train every architecture, not just the LMs).
#include <gtest/gtest.h>

#include "src/analysis/checkpointing.h"
#include "src/hw/accelerator.h"
#include "src/analysis/first_order.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"

namespace gf {
namespace {

TEST(GruCell, ThreeQuartersOfLstmWeightsPerLayer) {
  models::WordLmConfig lstm_cfg{.vocab = 1000, .layers = 1, .seq_length = 4};
  models::WordLmConfig gru_cfg = lstm_cfg;
  gru_cfg.cell = models::RecurrentCell::kGRU;
  const auto lstm = models::build_word_lm(lstm_cfg);
  const auto gru = models::build_word_lm(gru_cfg);
  const double h = 512;
  // Recurrent weights: LSTM 8h^2, GRU 6h^2; embeddings/output identical.
  const double lstm_rec = lstm.params_at(h) - 2.0 * 1000 * h;
  const double gru_rec = gru.params_at(h) - 2.0 * 1000 * h;
  EXPECT_NEAR(gru_rec / lstm_rec, 0.75, 0.01);
}

TEST(GruCell, SameAsymptoticFlopsPerParam) {
  // The paper's architecture-robustness claim: cell choice does not move
  // the asymptotic constant — both land at 6q FLOPs/param/sample.
  models::WordLmConfig gru_cfg;
  gru_cfg.cell = models::RecurrentCell::kGRU;
  const auto gru = models::build_word_lm(gru_cfg);
  const double h = gru.hidden_for_params(3e11);
  const auto bind = gru.bind(h, 16);
  const double per_param =
      gru.graph->total_flops().eval(bind) / (16.0 * gru.params_at(h));
  EXPECT_NEAR(per_param, 6.0 * 80, 0.06 * 6.0 * 80);
}

TEST(GruCell, RejectsProjectionCombination) {
  models::WordLmConfig cfg;
  cfg.cell = models::RecurrentCell::kGRU;
  cfg.projection = true;
  EXPECT_THROW(models::build_word_lm(cfg), std::invalid_argument);
}

TEST(GruCell, ToyInstanceTrains) {
  models::WordLmConfig cfg{.vocab = 30, .layers = 1, .seq_length = 4};
  cfg.cell = models::RecurrentCell::kGRU;
  const auto spec = models::build_word_lm(cfg);
  rt::ExecutorOptions opt;
  opt.learning_rate = 0.5;
  rt::Executor ex(*spec.graph, spec.bind(12, 4), opt);
  ex.retain(spec.loss);
  ex.run_step();
  const float first = ex.value(spec.loss).f(0);
  for (int i = 0; i < 30; ++i) ex.run_step();
  EXPECT_LT(ex.value(spec.loss).f(0), first);
}

TEST(ToyTraining, NmtLossDecreases) {
  const auto spec = models::build_nmt({.vocab_src = 25,
                                       .vocab_tgt = 25,
                                       .src_length = 3,
                                       .tgt_length = 3,
                                       .decoder_layers = 1});
  rt::ExecutorOptions opt;
  opt.learning_rate = 0.3;
  rt::Executor ex(*spec.graph, spec.bind(10, 4), opt);
  ex.retain(spec.loss);
  ex.run_step();
  const float first = ex.value(spec.loss).f(0);
  for (int i = 0; i < 30; ++i) ex.run_step();
  EXPECT_LT(ex.value(spec.loss).f(0), first);
}

TEST(ToyTraining, SpeechLossDecreases) {
  models::SpeechConfig cfg;
  cfg.audio_frames = 6;
  cfg.feature_dim = 4;
  cfg.encoder_layers = 2;
  cfg.decoder_length = 3;
  cfg.vocab = 12;
  const auto spec = models::build_speech(cfg);
  rt::ExecutorOptions opt;
  opt.learning_rate = 0.3;
  rt::Executor ex(*spec.graph, spec.bind(8, 4), opt);
  ex.retain(spec.loss);
  ex.run_step();
  const float first = ex.value(spec.loss).f(0);
  for (int i = 0; i < 30; ++i) ex.run_step();
  EXPECT_LT(ex.value(spec.loss).f(0), first);
}

TEST(ToyTraining, ResNetLossDecreases) {
  const auto spec = models::build_resnet({.depth = 18, .image_size = 32, .classes = 5});
  rt::ExecutorOptions opt;
  opt.learning_rate = 0.05;
  rt::Executor ex(*spec.graph, spec.bind(4, 4), opt);
  ex.retain(spec.loss);
  ex.run_step();
  const float first = ex.value(spec.loss).f(0);
  for (int i = 0; i < 20; ++i) ex.run_step();
  EXPECT_LT(ex.value(spec.loss).f(0), first);
}

TEST(Checkpointing, SqrtScheduleReducesMemory) {
  const auto t = analysis::checkpointing_tradeoff(80e9, 80);
  EXPECT_EQ(t.segments, 9);
  EXPECT_GT(t.memory_reduction, 3.5);
  EXPECT_LT(t.checkpointed_activation_bytes, t.baseline_activation_bytes);
  EXPECT_GT(t.extra_flops_fraction, 0.2);
  EXPECT_LT(t.extra_flops_fraction, 1.0 / 3.0 + 1e-9);
}

TEST(Checkpointing, DegenerateCases) {
  const auto one = analysis::checkpointing_tradeoff(1e9, 1);
  EXPECT_EQ(one.segments, 1);
  EXPECT_DOUBLE_EQ(one.memory_reduction, 1.0);
  EXPECT_DOUBLE_EQ(one.extra_flops_fraction, 0.0);
  EXPECT_THROW(analysis::checkpointing_tradeoff(-1, 4), std::invalid_argument);
  EXPECT_THROW(analysis::checkpointing_tradeoff(1e9, 0), std::invalid_argument);
}

TEST(Checkpointing, ReductionGrowsWithDepth) {
  double prev = 1.0;
  for (int layers : {4, 16, 64, 256}) {
    const auto t = analysis::checkpointing_tradeoff(1e9, layers);
    EXPECT_GE(t.memory_reduction, prev);
    prev = t.memory_reduction;
  }
  EXPECT_GT(prev, 6.0);  // deep stacks approach sqrt(L)/2-ish savings
}

TEST(TpuConfig, ValidatesAndContrasts) {
  const auto tpu = hw::AcceleratorConfig::tpu_v2_like();
  EXPECT_NO_THROW(tpu.validate());
  const auto v100 = hw::AcceleratorConfig::v100_like();
  EXPECT_GT(tpu.peak_flops, v100.peak_flops);
  EXPECT_LT(tpu.mem_capacity, v100.mem_capacity);
  EXPECT_GT(tpu.ridge_point(), v100.ridge_point());  // more compute-skewed
}

}  // namespace
}  // namespace gf

// Tests of the serve layer: content-addressed stage cache (single-flight,
// immutability, per-stage reuse accounting), the AnalysisService protocol
// (determinism under concurrent hammering, malformed-request containment),
// and the ordered-output server loop (byte-identical streams for any
// worker count). The hammering tests are in the TSan CI matrix — they are
// the data-race regression net for the whole serve stack.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/concurrency/thread_pool.h"
#include "src/ir/gradients.h"
#include "src/ir/graph.h"
#include "src/ir/hash.h"
#include "src/ir/ops.h"
#include "src/ir/serialize.h"
#include "src/serve/cache.h"
#include "src/serve/server.h"
#include "src/serve/service.h"

namespace gf::serve {
namespace {

using sym::Expr;

/// Small training-step MLP over the standard model symbols, serialized —
/// a cheap stand-in for a client-submitted graph. Symbols match
/// models::kBatchSymbol / kHiddenSymbol so characterize bindings apply.
std::string submitted_graph_text() {
  ir::Graph g("submitted_mlp");
  const Expr b = Expr::symbol("batch");
  const Expr h = Expr::symbol("hidden");
  ir::Tensor* x = g.add_input("x", {b, h});
  ir::Tensor* labels = g.add_input("labels", {b}, ir::DataType::kInt32);
  ir::Tensor* w1 = g.add_weight("w1", {h, h});
  ir::Tensor* w2 = g.add_weight("w2", {h, Expr(8)});
  ir::Tensor* hid = ir::relu(g, "act", ir::matmul(g, "fc1", x, w1));
  ir::Tensor* logits = ir::matmul(g, "fc2", hid, w2);
  auto [per_row, probs] = ir::softmax_xent(g, "xent", logits, labels);
  (void)probs;
  ir::Tensor* loss = ir::reduce_mean(g, "loss", per_row);
  ir::build_training_step(g, loss);
  return ir::serialize(g);
}

std::uint64_t stage_executions(const StageCacheStats& stats, const std::string& name) {
  for (const auto& s : stats.stages)
    if (s.stage == name) return s.executions;
  return 0;
}

std::uint64_t stage_hits(const StageCacheStats& stats, const std::string& name) {
  for (const auto& s : stats.stages)
    if (s.stage == name) return s.hits;
  return 0;
}

TEST(StageCache, SingleFlightUnderConcurrentHammering) {
  StageCache cache;
  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 50;
  std::atomic<int> computed{0};
  std::vector<std::shared_ptr<const int>> seen(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRoundsPerThread; ++i) {
        auto value = cache.get_or_compute<int>("stage", 42, [&] {
          computed.fetch_add(1, std::memory_order_relaxed);
          return std::make_shared<int>(7);
        });
        seen[t] = value;
      }
    });
  for (auto& th : threads) th.join();

  // SINGLE-FLIGHT: one execution ever, no matter the contention.
  EXPECT_EQ(computed.load(), 1);
  // IMMUTABLE ONCE PUBLISHED: every thread saw the same object.
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t].get(), seen[0].get());
  EXPECT_EQ(*seen[0], 7);

  const StageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.executions, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads) * kRoundsPerThread - 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(StageCache, EntriesAreImmutableAndEvictionFree) {
  StageCache cache;
  std::vector<const int*> pointers;
  // Publish 64 entries, then re-read each many times: the pointer a key
  // resolves to never changes (no eviction, no replacement).
  for (std::uint64_t key = 0; key < 64; ++key)
    pointers.push_back(
        cache.get_or_compute<int>("s", key, [&] { return std::make_shared<int>(static_cast<int>(key)); })
            .get());
  for (int round = 0; round < 10; ++round)
    for (std::uint64_t key = 0; key < 64; ++key) {
      auto value = cache.get_or_compute<int>("s", key, [&]() -> std::shared_ptr<int> {
        ADD_FAILURE() << "published entry recomputed";
        return std::make_shared<int>(-1);
      });
      EXPECT_EQ(value.get(), pointers[key]);
      EXPECT_EQ(*value, static_cast<int>(key));
    }
  const StageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 64u);
  EXPECT_EQ(stats.executions, 64u);
  EXPECT_EQ(stats.hits, 640u);
}

TEST(StageCache, ThrowingComputeIsNotCached) {
  StageCache cache;
  EXPECT_THROW(cache.get_or_compute<int>("s", 1,
                                         []() -> std::shared_ptr<int> {
                                           throw std::runtime_error("transient");
                                         }),
               std::runtime_error);
  // The failure left the once-flag unset: the next requester retries and
  // the eventual success is the only recorded execution.
  auto value = cache.get_or_compute<int>("s", 1, [] { return std::make_shared<int>(5); });
  EXPECT_EQ(*value, 5);
  const StageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.executions, 1u);
}

TEST(StageCache, SameKeyDifferentStageIsDistinct) {
  StageCache cache;
  auto a = cache.get_or_compute<int>("count", 9, [] { return std::make_shared<int>(1); });
  auto b = cache.get_or_compute<int>("project", 9, [] { return std::make_shared<int>(2); });
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(Serve, ResponsesAreByteIdenticalUnderConcurrentHammering) {
  const std::string graph_text = submitted_graph_text();
  Json req = Json::object();
  req.set("kind", Json("characterize"));
  req.set("graph", Json(graph_text));
  req.set("hidden", Json(64.0));
  req.set("batch", Json(16.0));
  const std::string line = req.dump();

  conc::ThreadPool pool(2);
  AnalysisService service(pool);
  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 25;
  std::vector<std::vector<std::string>> responses(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRoundsPerThread; ++i)
        responses[t].push_back(service.handle(line));
    });
  for (auto& th : threads) th.join();

  const std::string& expected = responses[0][0];
  EXPECT_NE(expected.find("\"ok\":true"), std::string::npos) << expected;
  for (int t = 0; t < kThreads; ++t)
    for (const std::string& r : responses[t]) EXPECT_EQ(r, expected);

  // Zero re-executions: the expensive stages ran exactly once across all
  // 200 identical requests.
  const StageCacheStats stats = service.cache_stats();
  EXPECT_EQ(stage_executions(stats, "parse"), 1u);
  EXPECT_EQ(stage_executions(stats, "count"), 1u);
  EXPECT_EQ(stage_executions(stats, "project"), 1u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(Serve, SweepReusesCountStageAcrossPoints) {
  const std::string graph_text = submitted_graph_text();
  Json req = Json::object();
  req.set("kind", Json("sweep"));
  req.set("graph", Json(graph_text));
  Json hiddens = Json::array();
  for (double h : {32.0, 64.0, 128.0, 256.0}) hiddens.push_back(Json(h));
  req.set("hidden", hiddens);
  req.set("batch", Json(16.0));
  const std::string line = req.dump();

  conc::ThreadPool pool(1);
  AnalysisService service(pool);
  const std::string first = service.handle(line);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos) << first;

  StageCacheStats stats = service.cache_stats();
  // One parse, one count — then only the cheap projection tail per point.
  EXPECT_EQ(stage_executions(stats, "parse"), 1u);
  EXPECT_EQ(stage_executions(stats, "count"), 1u);
  EXPECT_EQ(stage_executions(stats, "project"), 4u);

  // A repeated identical sweep executes nothing at all.
  const std::string second = service.handle(line);
  EXPECT_EQ(second, first);
  stats = service.cache_stats();
  EXPECT_EQ(stats.executions, 6u);  // unchanged: 1 parse + 1 count + 4 project
  EXPECT_EQ(stage_hits(stats, "project"), 4u);
}

TEST(Serve, MalformedRequestsAreRejectedWithoutServerDeath) {
  const std::string graph_text = submitted_graph_text();
  Json good = Json::object();
  good.set("id", Json(3.0));
  good.set("kind", Json("characterize"));
  good.set("graph", Json(graph_text));
  good.set("hidden", Json(32.0));
  good.set("batch", Json(8.0));

  std::ostringstream input;
  input << "this is not json\n";
  input << "{\"kind\":\"no-such-kind\"}\n";
  input << "{\"kind\":\"characterize\"}\n";          // no model/graph
  input << "{\"kind\":\"characterize\",\"model\":\"no_such_family\",\"batch\":1,\"hidden\":1}\n";
  input << "\n";  // blank: ignored, not answered
  input << good.dump() << "\n";

  conc::ThreadPool pool(2);
  AnalysisService service(pool);
  std::istringstream in(input.str());
  std::ostringstream out;
  const std::size_t served = run_server(in, out, service, pool);
  EXPECT_EQ(served, 5u);

  std::vector<std::string> lines;
  std::istringstream result(out.str());
  for (std::string line; std::getline(result, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);
  for (int i = 0; i < 4; ++i)
    EXPECT_NE(lines[i].find("\"ok\":false"), std::string::npos) << lines[i];
  EXPECT_NE(lines[4].find("\"ok\":true"), std::string::npos) << lines[4];
  EXPECT_NE(lines[4].find("\"id\":3"), std::string::npos) << lines[4];
}

TEST(Serve, OutputStreamIsIdenticalForAnyWorkerCount) {
  const std::string graph_text = submitted_graph_text();
  std::ostringstream input;
  for (int i = 0; i < 12; ++i) {
    Json req = Json::object();
    req.set("id", Json(static_cast<double>(i)));
    req.set("kind", Json(i % 3 == 2 ? "lint" : "characterize"));
    req.set("graph", Json(graph_text));
    if (i % 3 != 2) {
      req.set("hidden", Json(32.0 * (1 + i % 4)));
      req.set("batch", Json(16.0));
    }
    input << req.dump() << "\n";
  }

  std::vector<std::string> streams;
  for (std::size_t threads : {1u, 2u, 8u}) {
    conc::ThreadPool pool(threads);
    AnalysisService service(pool);  // fresh (cold) cache per run
    std::istringstream in(input.str());
    std::ostringstream out;
    ServerOptions options;
    options.max_in_flight = 4;  // exercise backpressure too
    EXPECT_EQ(run_server(in, out, service, pool, options), 12u);
    streams.push_back(out.str());
  }
  EXPECT_EQ(streams[1], streams[0]);
  EXPECT_EQ(streams[2], streams[0]);
}

TEST(Serve, PreloadWarmsParseAndCountStages) {
  const std::string graph_text = submitted_graph_text();
  conc::ThreadPool pool(1);
  AnalysisService service(pool);
  const std::uint64_t hash = service.preload_graph(graph_text);
  EXPECT_NE(hash, 0u);

  Json req = Json::object();
  req.set("kind", Json("characterize"));
  req.set("graph", Json(graph_text));
  req.set("hidden", Json(64.0));
  req.set("batch", Json(16.0));
  const std::string response = service.handle(req.dump());
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;

  const StageCacheStats stats = service.cache_stats();
  EXPECT_EQ(stage_executions(stats, "parse"), 1u);  // preload did it
  EXPECT_EQ(stage_executions(stats, "count"), 1u);
  EXPECT_GE(stage_hits(stats, "parse"), 1u);
  EXPECT_THROW(service.preload_graph("graph v1\nnot a real graph"), std::exception);
}

TEST(Serve, StatsRequestReportsPoolAndCacheCounters) {
  conc::ThreadPool pool(3);
  AnalysisService service(pool);
  const std::string response = service.handle("{\"kind\":\"stats\"}");
  const Json parsed = Json::parse(response);
  EXPECT_TRUE(parsed.bool_or("ok", false)) << response;
  const Json* pool_json = parsed.find("pool");
  ASSERT_NE(pool_json, nullptr);
  EXPECT_EQ(pool_json->number_or("threads", 0), 3.0);
  EXPECT_EQ(pool_json->number_or("queue_depth", -1), 0.0);
  EXPECT_EQ(pool_json->number_or("busy_workers", -1), 0.0);
  const Json* cache_json = parsed.find("cache");
  ASSERT_NE(cache_json, nullptr);
  EXPECT_EQ(cache_json->number_or("entries", -1), 0.0);
}

TEST(ServeJson, RoundTripsAndRejectsMalformed) {
  const Json parsed = Json::parse(
      "{\"a\": [1, 2.5, true, null, \"x\\u0041\"], \"b\": {\"nested\": -3e2}}");
  EXPECT_EQ(parsed.find("a")->items().size(), 5u);
  EXPECT_EQ(parsed.find("a")->items()[4].as_string(), "xA");
  EXPECT_EQ(parsed.find("b")->number_or("nested", 0), -300.0);
  // Deterministic rendering: integers print without exponent or fraction.
  Json obj = Json::object();
  obj.set("n", Json(1234567.0));
  obj.set("f", Json(0.5));
  EXPECT_EQ(obj.dump(), "{\"n\":1234567,\"f\":0.5}");
  EXPECT_THROW(Json::parse("{\"unterminated\": "), std::exception);
  EXPECT_THROW(Json::parse("[1,]"), std::exception);
  EXPECT_THROW(Json::parse(""), std::exception);
}

}  // namespace
}  // namespace gf::serve

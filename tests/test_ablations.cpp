// Ablation-knob tests (§6.2.3): half precision halves memory quantities
// without touching algorithmic FLOPs; heavier optimizers add persistent
// slot state; algorithmic IO is batch-proportional and model-size-free.
#include <gtest/gtest.h>

#include "src/ir/footprint.h"
#include "src/models/models.h"

namespace gf::models {
namespace {

using sym::Bindings;

TEST(HalfPrecision, HalvesBytesAndFootprintNotFlops) {
  WordLmConfig fp32;
  fp32.vocab = 2000;
  fp32.seq_length = 10;
  WordLmConfig fp16 = fp32;
  fp16.training.half_precision = true;

  const ModelSpec a = build_word_lm(fp32);
  const ModelSpec b = build_word_lm(fp16);
  const Bindings bind_a = a.bind(64, 8);
  const Bindings bind_b = b.bind(64, 8);

  EXPECT_DOUBLE_EQ(a.graph->total_flops().eval(bind_a),
                   b.graph->total_flops().eval(bind_b));
  const double bytes32 = a.graph->total_bytes_accessed().eval(bind_a);
  const double bytes16 = b.graph->total_bytes_accessed().eval(bind_b);
  // Integer id/label tensors don't shrink, so slightly above half.
  EXPECT_GT(bytes16, 0.5 * bytes32);
  EXPECT_LT(bytes16, 0.55 * bytes32);

  const auto fp_a = ir::minimal_footprint(*a.graph, bind_a);
  const auto fp_b = ir::minimal_footprint(*b.graph, bind_b);
  EXPECT_NEAR(fp_b.persistent_bytes, 0.5 * fp_a.persistent_bytes,
              1e-9 * fp_a.persistent_bytes);
  EXPECT_LT(fp_b.total_bytes, 0.56 * fp_a.total_bytes);
}

TEST(HalfPrecision, WorksForEveryFamily) {
  WordLmConfig w{.vocab = 100, .layers = 1, .seq_length = 3};
  w.training.half_precision = true;
  EXPECT_NO_THROW(build_word_lm(w).graph->validate());
  CharLmConfig c{.vocab = 30, .depth = 2, .seq_length = 3};
  c.training.half_precision = true;
  EXPECT_NO_THROW(build_char_lm(c).graph->validate());
  ResNetConfig r{.depth = 18, .image_size = 32, .classes = 10};
  r.training.half_precision = true;
  EXPECT_NO_THROW(build_resnet(r).graph->validate());
  TransformerLmConfig t{.vocab = 50, .layers = 1, .seq_length = 4};
  t.training.half_precision = true;
  EXPECT_NO_THROW(build_transformer_lm(t).graph->validate());
}

TEST(OptimizerChoice, SlotStateScalesPersistentBytes) {
  WordLmConfig base{.vocab = 500, .layers = 1, .seq_length = 4};
  WordLmConfig momentum = base;
  momentum.training.optimizer = ir::Optimizer::kMomentum;
  WordLmConfig adam = base;
  adam.training.optimizer = ir::Optimizer::kAdam;

  const auto fp = [](const ModelSpec& s) {
    return ir::minimal_footprint(*s.graph, s.bind(32, 4)).persistent_bytes;
  };
  const ModelSpec s_sgd = build_word_lm(base);
  const double params = s_sgd.params_at(32);
  const double sgd = fp(s_sgd);
  const double mom = fp(build_word_lm(momentum));
  const double adm = fp(build_word_lm(adam));
  EXPECT_NEAR(sgd, 8.0 * params, 1.0);        // weights + grads
  EXPECT_NEAR(mom, 12.0 * params, 1.0);       // + 1 slot
  EXPECT_NEAR(adm, 16.0 * params, 1.0);       // + 2 slots
}

TEST(OptimizerChoice, UpdateFlopsScaleWithOptimizer) {
  WordLmConfig base{.vocab = 500, .layers = 1, .seq_length = 4};
  WordLmConfig adam = base;
  adam.training.optimizer = ir::Optimizer::kAdam;
  const ModelSpec s = build_word_lm(base);
  const ModelSpec a = build_word_lm(adam);
  // Update ops are batch-independent; difference shows at batch->0.
  const double f_sgd = s.graph->total_flops().eval(s.bind(32, 1));
  const double f_adam = a.graph->total_flops().eval(a.bind(32, 1));
  EXPECT_NEAR(f_adam - f_sgd, 8.0 * s.params_at(32), 1.0);  // (10-2)/elem
}

TEST(AlgorithmicIO, ProportionalToBatchOnly) {
  const ModelSpec spec = build_word_lm({.vocab = 1000, .layers = 1, .seq_length = 10});
  const sym::Expr io = spec.graph->algorithmic_io();
  // ids (B,10) + labels (10B) int32 + two zero-state inputs (B,h) per layer.
  const double io_b8_h32 = io.eval(spec.bind(32, 8));
  const double io_b16_h32 = io.eval(spec.bind(32, 16));
  EXPECT_DOUBLE_EQ(io_b16_h32, 2.0 * io_b8_h32);
  // Token IO specifically (int inputs) is independent of model size.
  const double ids_bytes = 8 * 10 * 4 * 2;  // ids + labels at b=8
  EXPECT_GE(io_b8_h32, ids_bytes);
}

TEST(AlgorithmicIO, TinyRelativeToStepBytes) {
  // §2.1: IO grows very slowly relative to compute/memory traffic.
  const ModelSpec spec = build_word_lm();
  const auto bind = spec.bind(spec.hidden_for_params(1e9), 128);
  const double io = spec.graph->algorithmic_io().eval(bind);
  const double bytes = spec.graph->total_bytes_accessed().eval(bind);
  EXPECT_LT(io, 1e-3 * bytes);
}

}  // namespace
}  // namespace gf::models

// Parallelism-planning tests: allreduce cost, data-parallel scaling
// (Figure 12), pipeline layer parallelism, embedding sharding, and the
// full Table 5 case study.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/plan/case_study.h"

namespace gf::plan {
namespace {

TEST(AllReduce, SingleWorkerIsFree) {
  EXPECT_DOUBLE_EQ(ring_allreduce_seconds({}, 1e9, 1), 0.0);
}

TEST(AllReduce, BandwidthTermApproaches2x) {
  AllReduceModel m;
  m.hop_latency = 0;
  const double bytes = 95.2e9;  // 23.8B params * 4B
  const double t2 = ring_allreduce_seconds(m, bytes, 2);
  EXPECT_NEAR(t2, bytes / m.link_bandwidth, 1e-9);  // 2*(1/2)
  const double t_many = ring_allreduce_seconds(m, bytes, 4096);
  EXPECT_NEAR(t_many, 2.0 * bytes / m.link_bandwidth, 0.01 * t_many);
}

TEST(AllReduce, LatencyGrowsWithWorkers) {
  AllReduceModel m;
  m.hop_latency = 1e-5;
  EXPECT_GT(ring_allreduce_seconds(m, 0.0, 1024), ring_allreduce_seconds(m, 0.0, 16));
  EXPECT_THROW(ring_allreduce_seconds(m, -1.0, 2), std::invalid_argument);
}

TEST(AllReduce, CompressionShrinksPayload) {
  EXPECT_DOUBLE_EQ(compressed_gradient_bytes(1e9, 32), 4e9);
  EXPECT_DOUBLE_EQ(compressed_gradient_bytes(1e9, 2), 0.25e9);  // TernGrad-ish
  EXPECT_THROW(compressed_gradient_bytes(1e9, 0), std::invalid_argument);
}

WorkerStep paper_word_lm_worker() {
  WorkerStep w;
  w.step_seconds = 9.89 * 0.80 / 0.46;  // cache-aware step (§6.1)
  w.flops = 9.89 * 0.80 * 15.67e12;
  w.subbatch = 128;
  w.gradient_bytes = 4.0 * 23.8e9;
  w.samples_per_epoch = 2707.0 * 86400.0 / 9.89 * 128;
  return w;
}

TEST(DataParallel, EpochTimeDecreasesUtilizationDeclines) {
  const auto worker = paper_word_lm_worker();
  const auto accel = hw::AcceleratorConfig::v100_like();
  const auto sweep = data_parallel_sweep(worker, accel, {}, 16384);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i].epoch_days, sweep[i - 1].epoch_days);
    EXPECT_LE(sweep[i].flop_utilization, sweep[i - 1].flop_utilization + 1e-12);
  }
  // Figure 12 shape: near-linear early, communication-limited utilization
  // floor later.
  EXPECT_NEAR(sweep[1].epoch_days, sweep[0].epoch_days / 2, 0.05 * sweep[0].epoch_days);
}

TEST(DataParallel, PaperScaleNumbers) {
  // Table 5: 1024 workers -> ~6 days/epoch at ~34-40% utilization;
  // 512 workers -> ~11 days.
  const auto worker = paper_word_lm_worker();
  const auto accel = hw::AcceleratorConfig::v100_like();
  const auto p1024 = evaluate_data_parallel(worker, accel, {}, 1024);
  EXPECT_NEAR(p1024.epoch_days, 6.2, 1.5);
  EXPECT_NEAR(p1024.flop_utilization, 0.36, 0.06);
  const auto p512 = evaluate_data_parallel(worker, accel, {}, 512);
  EXPECT_NEAR(p512.epoch_days, 11.1, 1.5);
}

TEST(DataParallel, WorkersForTargetDays) {
  const auto worker = paper_word_lm_worker();
  const auto accel = hw::AcceleratorConfig::v100_like();
  const int n = workers_for_epoch_days(worker, accel, {}, 7.0, 65536);
  EXPECT_GE(n, 512);
  EXPECT_LE(n, 2048);
  EXPECT_EQ(workers_for_epoch_days(worker, accel, {}, 1e-6, 1024), 0);
}

std::vector<LayerFootprint> paper_layers() {
  return {{"embedding", 59.5e9, true},
          {"recurrent0", 17e9, false},
          {"recurrent1", 17e9, false},
          {"output", 32e9, false}};
}

TEST(LayerParallel, PipelineSpeedupFormula) {
  PipelineModel p;
  p.stages = 4;
  p.microbatches = 2;
  const auto r = layer_parallel_step(20.0, p, paper_layers());
  // k*u/(u+k-1) = 8/5 = 1.6
  EXPECT_NEAR(r.speedup, 1.6, 1e-9);
  EXPECT_NEAR(r.step_seconds, 12.5, 1e-9);
  EXPECT_NEAR(r.efficiency, 0.4, 1e-9);
  ASSERT_EQ(r.stage_bytes.size(), 4u);
  EXPECT_DOUBLE_EQ(r.stage_bytes[0], 59.5e9);
}

TEST(LayerParallel, MoreMicrobatchesApproachIdeal) {
  PipelineModel p;
  p.stages = 4;
  double prev = 0;
  for (int u : {1, 2, 8, 64}) {
    p.microbatches = u;
    const auto r = layer_parallel_step(20.0, p, paper_layers());
    EXPECT_GT(r.speedup, prev);
    prev = r.speedup;
  }
  EXPECT_NEAR(prev, 4.0, 0.25);  // u=64 nearly hides the bubble
}

TEST(LayerParallel, BoundaryTrafficAddsTime) {
  PipelineModel p;
  p.stages = 4;
  p.microbatches = 2;
  p.boundary_activation_bytes = 1e9;
  const auto with = layer_parallel_step(20.0, p, paper_layers());
  p.boundary_activation_bytes = 0;
  const auto without = layer_parallel_step(20.0, p, paper_layers());
  EXPECT_GT(with.step_seconds, without.step_seconds);
}

TEST(Sharding, ReproducesPaperEmbeddingSplit) {
  // Table 5: {60, 17, 17, 32} GB shards into ~{32, 31, 31, 32} using 3
  // pieces under a 32 GB capacity.
  const auto plan = shard_to_capacity(paper_layers(), 4, 32e9);
  EXPECT_EQ(plan.pieces, 3);
  ASSERT_EQ(plan.stage_bytes.size(), 4u);
  for (double b : plan.stage_bytes) EXPECT_LE(b, 32e9 * 1.0001);
  EXPECT_NEAR(plan.stage_bytes[0], 31.2e9, 1e9);
  EXPECT_NEAR(plan.stage_bytes[1], 31.2e9, 1e9);
  EXPECT_NEAR(plan.stage_bytes[2], 31.2e9, 1e9);
  EXPECT_NEAR(plan.stage_bytes[3], 32e9, 1e8);
  // Total memory is conserved.
  double total_out = 0;
  for (double b : plan.stage_bytes) total_out += b;
  EXPECT_NEAR(total_out, 125.5e9, 1e6);
}

TEST(Sharding, ThrowsWhenNothingShardableAndOverCapacity) {
  std::vector<LayerFootprint> layers{{"a", 40e9, false}, {"b", 10e9, false}};
  EXPECT_THROW(shard_to_capacity(layers, 2, 32e9), std::runtime_error);
}

TEST(Sharding, ThrowsWhenPerfectSplitCannotFit) {
  std::vector<LayerFootprint> layers{{"emb", 100e9, true}, {"r", 30e9, false}};
  EXPECT_THROW(shard_to_capacity(layers, 2, 32e9), std::runtime_error);
}

TEST(Sharding, PooledShardablesSpreadEvenly) {
  // Several shardable tables (Megatron-style tensor splits) pool together.
  std::vector<LayerFootprint> layers{
      {"emb", 40e9, true}, {"out", 40e9, true}, {"r", 10e9, false}};
  const auto plan = shard_to_capacity(layers, 4, 32e9);
  EXPECT_EQ(plan.pieces, 4);
  double total = 0;
  for (double b : plan.stage_bytes) {
    EXPECT_LE(b, 32e9 * 1.0001);
    total += b;
  }
  EXPECT_NEAR(total, 90e9, 1e6);
}

TEST(Sharding, NoopWhenAlreadyFits) {
  std::vector<LayerFootprint> layers{{"emb", 10e9, true}, {"r", 12e9, false}};
  const auto plan = shard_to_capacity(layers, 2, 32e9);
  for (double b : plan.stage_bytes) EXPECT_LE(b, 32e9);
}

TEST(CaseStudy, ReproducesTable5Shape) {
  const auto inputs = paper_calibrated_case_study();
  const auto rows =
      run_case_study(inputs, hw::AcceleratorConfig::v100_like(), AllReduceModel{});
  ASSERT_EQ(rows.size(), 6u);

  // Row 1: best case, 2707 days at 80%.
  EXPECT_NEAR(rows[0].epoch_days, 2707, 10);
  EXPECT_NEAR(rows[0].utilization, 0.80, 1e-9);
  // Row 2: cache-aware ~4671-4708 days at 46% (the paper's own body text
  // and table disagree: 4671 vs 4071; we match the utilization-consistent
  // value).
  EXPECT_NEAR(rows[1].epoch_days, 4700, 120);
  EXPECT_NEAR(rows[1].utilization, 0.46, 1e-9);
  // Rows 3-4: data parallelism.
  EXPECT_EQ(rows[2].accelerators, 1024);
  EXPECT_NEAR(rows[2].epoch_days, 6.2, 1.5);
  EXPECT_EQ(rows[3].accelerators, 512);
  EXPECT_NEAR(rows[3].epoch_days, 11.1, 1.5);
  // Row 5: + layer parallelism on 2048 accelerators, ~7 days, ~15% util.
  EXPECT_EQ(rows[4].accelerators, 2048);
  EXPECT_NEAR(rows[4].epoch_days, 7.2, 1.5);
  EXPECT_NEAR(rows[4].utilization, 0.145, 0.05);
  // Row 6: embedding sharded into 3 pieces, all stages within 32 GB.
  ASSERT_EQ(rows[5].memory_per_accel_bytes.size(), 4u);
  for (double b : rows[5].memory_per_accel_bytes) EXPECT_LE(b, 32e9 * 1.0001);
  EXPECT_NE(rows[5].stage.find("3 pieces"), std::string::npos);
}

TEST(CaseStudy, GradientCompressionAblation) {
  // §6.2.3: compressing gradients cuts the communication share. With 2-bit
  // gradients the 1024-worker step approaches its compute bound.
  auto inputs = paper_calibrated_case_study();
  const auto accel = hw::AcceleratorConfig::v100_like();
  WorkerStep w;
  w.step_seconds = inputs.cache_step_seconds;
  w.flops = inputs.flops_per_step;
  w.subbatch = inputs.subbatch;
  w.samples_per_epoch = inputs.samples_per_epoch;
  w.gradient_bytes = 4.0 * inputs.params;
  const auto full = evaluate_data_parallel(w, accel, {}, 1024);
  w.gradient_bytes = compressed_gradient_bytes(inputs.params, 2);
  const auto compressed = evaluate_data_parallel(w, accel, {}, 1024);
  EXPECT_LT(compressed.comm_seconds, 0.1 * full.comm_seconds);
  EXPECT_GT(compressed.flop_utilization, full.flop_utilization);
}

}  // namespace
}  // namespace gf::plan

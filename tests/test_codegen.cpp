// Codegen subsystem tests: the CPU feature probe and register-tile rule,
// GF_SIMD spelling parsing, forced-ISA dispatch resolution, the lowering
// pass (DCE, identity forwarding, load dedup, alpha slots, translation
// validation against ir::fused_program_semantics on every built-in model),
// the compiled fused-pointwise executors (bitwise on exact-IEEE programs,
// epsilon-bounded through the polynomial sigmoid/tanh, thread-count
// invariant, special-value semantics), the register-tiled GEMM
// micro-kernel (bitwise vs the scalar seed tile), executor integration
// (epsilon parity with the interpreter path on all six models across
// thread counts), and kernel-class tagging through the profiler and the
// Chrome-trace round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/concurrency/thread_pool.h"
#include "src/hw/cpu_features.h"
#include "src/ir/fusion.h"
#include "src/ir/graph.h"
#include "src/ir/ops.h"
#include "src/ir/semantics.h"
#include "src/ir/serialize.h"
#include "src/models/models.h"
#include "src/runtime/codegen/dispatch.h"
#include "src/runtime/codegen/lowering.h"
#include "src/runtime/executor.h"
#include "src/runtime/gemm.h"
#include "src/runtime/kernels.h"
#include "src/whatif/trace.h"

namespace gf {
namespace {

using ir::FusedInstr;
using ir::PointwiseFn;
using hw::SimdIsa;

// --- feature probe and register-tile rule -----------------------------------

TEST(CpuFeatures, ParseSimdIsaSpellings) {
  EXPECT_EQ(hw::parse_simd_isa(""), SimdIsa::kScalar);
  EXPECT_EQ(hw::parse_simd_isa("0"), SimdIsa::kScalar);
  EXPECT_EQ(hw::parse_simd_isa("scalar"), SimdIsa::kScalar);
  EXPECT_EQ(hw::parse_simd_isa("generic"), SimdIsa::kGeneric);
  EXPECT_EQ(hw::parse_simd_isa("avx2"), SimdIsa::kAvx2);
  EXPECT_EQ(hw::parse_simd_isa("avx512"), SimdIsa::kAvx512);
  EXPECT_EQ(hw::parse_simd_isa("neon"), SimdIsa::kNeon);
  EXPECT_EQ(hw::parse_simd_isa("auto"), std::nullopt);
  EXPECT_EQ(hw::parse_simd_isa("1"), std::nullopt);
  EXPECT_THROW(hw::parse_simd_isa("sse9"), std::invalid_argument);
}

TEST(CpuFeatures, ScalarAndGenericAlwaysSupported) {
  EXPECT_TRUE(hw::isa_supported(SimdIsa::kScalar));
  EXPECT_TRUE(hw::isa_supported(SimdIsa::kGeneric));
  const SimdIsa best = hw::best_simd_isa();
  EXPECT_NE(best, SimdIsa::kScalar);
  EXPECT_TRUE(hw::isa_supported(best));
  EXPECT_GE(hw::cpu_features().max_vector_width_floats, 4);
}

TEST(CpuFeatures, RegisterTileRuleMatchesVectorGeometry) {
  // The seed tile survives untouched on the scalar path.
  EXPECT_EQ(hw::register_tile_rule(SimdIsa::kScalar).mr, rt::kGemmMr);
  EXPECT_EQ(hw::register_tile_rule(SimdIsa::kScalar).nr, rt::kGemmNr);
  // Derived tiles: (regs - 4) / (2 * nr / width) clamped to [4, 8].
  EXPECT_EQ(hw::register_tile_rule(SimdIsa::kGeneric).mr, 6);
  EXPECT_EQ(hw::register_tile_rule(SimdIsa::kGeneric).nr, 8);
  EXPECT_EQ(hw::register_tile_rule(SimdIsa::kAvx2).mr, 6);
  EXPECT_EQ(hw::register_tile_rule(SimdIsa::kAvx2).nr, 8);
  EXPECT_EQ(hw::register_tile_rule(SimdIsa::kAvx512).mr, 8);
  EXPECT_EQ(hw::register_tile_rule(SimdIsa::kAvx512).nr, 16);
  EXPECT_EQ(hw::register_tile_rule(SimdIsa::kNeon).mr, 7);
  EXPECT_EQ(hw::register_tile_rule(SimdIsa::kNeon).nr, 8);
  for (const SimdIsa isa :
       {SimdIsa::kGeneric, SimdIsa::kAvx2, SimdIsa::kAvx512, SimdIsa::kNeon}) {
    const hw::RegisterTile tile = hw::register_tile_rule(isa);
    EXPECT_EQ(tile.nr % hw::simd_width_floats(isa), 0) << hw::simd_isa_name(isa);
    EXPECT_GE(tile.mr, 4);
    EXPECT_LE(tile.mr, 8);
  }
}

// --- dispatch ---------------------------------------------------------------

/// Restores the process-global forced-ISA override after each test.
class DispatchTest : public ::testing::Test {
 protected:
  void TearDown() override { rt::codegen::set_forced_isa(std::nullopt); }
};

TEST_F(DispatchTest, ForcedIsaControlsActiveIsa) {
  rt::codegen::set_forced_isa(SimdIsa::kScalar);
  EXPECT_EQ(rt::codegen::active_isa(), SimdIsa::kScalar);
  for (const SimdIsa isa :
       {SimdIsa::kGeneric, SimdIsa::kAvx2, SimdIsa::kAvx512, SimdIsa::kNeon}) {
    rt::codegen::set_forced_isa(isa);
    if (hw::isa_supported(isa)) {
      EXPECT_EQ(rt::codegen::active_isa(), isa) << hw::simd_isa_name(isa);
    } else {  // never SIGILL: an unsupported request degrades to the best ISA
      EXPECT_EQ(rt::codegen::active_isa(), hw::best_simd_isa())
          << hw::simd_isa_name(isa);
    }
  }
}

TEST_F(DispatchTest, ResolveIsaNeverYieldsUnsupported) {
  EXPECT_EQ(rt::codegen::resolve_isa(SimdIsa::kScalar), SimdIsa::kScalar);
  for (const SimdIsa isa :
       {SimdIsa::kGeneric, SimdIsa::kAvx2, SimdIsa::kAvx512, SimdIsa::kNeon}) {
    const SimdIsa resolved = rt::codegen::resolve_isa(isa);
    EXPECT_TRUE(hw::isa_supported(resolved));
    if (hw::isa_supported(isa)) {
      EXPECT_EQ(resolved, isa);
    }
  }
}

TEST_F(DispatchTest, GemmMicroKernelRefusesMismatchedTiles) {
  std::vector<float> a(8 * 4, 1.0f), b(8 * 16, 1.0f);
  std::vector<double> acc(8 * 16, 0.0);
  // kScalar has no compiled kernel.
  EXPECT_FALSE(rt::codegen::gemm_micro_kernel(SimdIsa::kScalar, a.data(), b.data(),
                                              4, acc.data(), 4, 8));
  // A supported ISA with the WRONG tile must refuse, not corrupt.
  const SimdIsa best = hw::best_simd_isa();
  const hw::RegisterTile tile = rt::codegen::gemm_register_tile(best);
  EXPECT_FALSE(rt::codegen::gemm_micro_kernel(best, a.data(), b.data(), 4,
                                              acc.data(), tile.mr + 1, tile.nr));
}

TEST_F(DispatchTest, DefaultGemmTilingFollowsActiveIsa) {
  rt::codegen::set_forced_isa(SimdIsa::kScalar);
  EXPECT_EQ(rt::default_gemm_tiling().mr, rt::kGemmMr);
  EXPECT_EQ(rt::default_gemm_tiling().nr, rt::kGemmNr);
  const SimdIsa best = hw::best_simd_isa();
  rt::codegen::set_forced_isa(best);
  const hw::RegisterTile tile = hw::register_tile_rule(best);
  EXPECT_EQ(rt::default_gemm_tiling().mr, tile.mr);
  EXPECT_EQ(rt::default_gemm_tiling().nr, tile.nr);
  // Cache blocks stay multiples of the register tile.
  EXPECT_EQ(rt::default_gemm_tiling().mc % tile.mr, 0);
  EXPECT_EQ(rt::default_gemm_tiling().nc % tile.nr, 0);
}

// --- lowering ---------------------------------------------------------------

TEST(Lowering, DropsDeadAndIdentityInstructions) {
  // 2: dead sigmoid; 3: identity chain hop; result = relu(x0 + x1).
  const std::vector<FusedInstr> program = {
      {PointwiseFn::kAdd, {0, 1}},       // 2
      {PointwiseFn::kSigmoid, {0}},      // 3: dead
      {PointwiseFn::kIdentity, {2}},     // 4: forwards the add
      {PointwiseFn::kRelu, {4}},         // 5
  };
  const auto low = rt::codegen::lower_program(program, 2);
  ASSERT_EQ(low.body.size(), 2u);  // add + relu survive
  EXPECT_EQ(low.loads.size(), 2u);
  EXPECT_EQ(rt::codegen::lowered_program_semantics(low, program).str(),
            ir::fused_program_semantics(program, 2).str());
}

TEST(Lowering, PureIdentityLowersToBareLoad) {
  const std::vector<FusedInstr> program = {{PointwiseFn::kIdentity, {0}}};
  const auto low = rt::codegen::lower_program(program, 1);
  EXPECT_TRUE(low.body.empty());
  ASSERT_EQ(low.loads.size(), 1u);
  EXPECT_EQ(low.result, 0);
  EXPECT_EQ(rt::codegen::lowered_program_semantics(low, program).str(),
            ir::fused_program_semantics(program, 1).str());
}

TEST(Lowering, DedupsLoadsAndKeepsAlphaSlots) {
  // x0 read twice -> one load; kScale at source index 1 keeps that key.
  const std::vector<FusedInstr> program = {
      {PointwiseFn::kMul, {0, 0}},
      {PointwiseFn::kScale, {1}, sym::Expr(0.5)},
  };
  const auto low = rt::codegen::lower_program(program, 1);
  EXPECT_EQ(low.loads.size(), 1u);
  ASSERT_EQ(low.body.size(), 2u);
  EXPECT_EQ(low.body[0].alpha_slot, -1);
  EXPECT_EQ(low.body[1].alpha_slot, 1);
  EXPECT_EQ(rt::codegen::lowered_program_semantics(low, program).str(),
            ir::fused_program_semantics(program, 1).str());
}

TEST(Lowering, RejectsMalformedPrograms) {
  EXPECT_THROW(rt::codegen::lower_program({}, 1), std::invalid_argument);
  EXPECT_THROW(rt::codegen::lower_program({{PointwiseFn::kAdd, {0}}}, 1),
               std::invalid_argument);  // wrong arity
  EXPECT_THROW(rt::codegen::lower_program({{PointwiseFn::kRelu, {3}}}, 1),
               std::invalid_argument);  // operand out of range
}

/// All six built-in model families at toy sizes (test_fusion's set).
struct ModelCase {
  const char* name;
  models::ModelSpec spec;
  double hidden;
};

std::vector<ModelCase> builtin_models() {
  std::vector<ModelCase> cases;
  {
    models::WordLmConfig cfg;
    cfg.vocab = 40;
    cfg.seq_length = 5;
    cfg.layers = 2;
    cases.push_back({"word_lm", models::build_word_lm(cfg), 8});
  }
  {
    models::CharLmConfig cfg;
    cfg.vocab = 20;
    cfg.depth = 3;
    cfg.seq_length = 4;
    cases.push_back({"char_lm", models::build_char_lm(cfg), 8});
  }
  {
    models::NmtConfig cfg;
    cfg.vocab_src = 30;
    cfg.vocab_tgt = 30;
    cfg.src_length = 4;
    cfg.tgt_length = 3;
    cfg.decoder_layers = 1;
    cases.push_back({"nmt", models::build_nmt(cfg), 8});
  }
  {
    models::SpeechConfig cfg;
    cfg.audio_frames = 8;
    cfg.feature_dim = 5;
    cfg.encoder_layers = 2;
    cfg.decoder_length = 3;
    cfg.vocab = 15;
    cases.push_back({"speech", models::build_speech(cfg), 6});
  }
  {
    models::ResNetConfig cfg;
    cfg.depth = 18;
    cfg.image_size = 32;
    cfg.classes = 10;
    cases.push_back({"resnet", models::build_resnet(cfg), 4});
  }
  {
    models::TransformerLmConfig cfg;
    cfg.vocab = 40;
    cfg.layers = 2;
    cfg.seq_length = 6;
    cases.push_back({"transformer_lm", models::build_transformer_lm(cfg), 8});
  }
  return cases;
}

TEST(Lowering, TranslationValidatesOnAllBuiltinModels) {
  for (ModelCase& c : builtin_models()) {
    const auto fused = ir::clone_graph(*c.spec.graph);
    ir::fuse_graph(*fused);
    std::size_t checked = 0;
    for (const auto& op : fused->ops()) {
      if (op->type() != ir::OpType::kFusedPointwise) continue;
      const auto& f = static_cast<const ir::FusedPointwiseOp&>(*op);
      const auto low = rt::codegen::lower_program(f.program(), f.inputs().size());
      EXPECT_TRUE(rt::codegen::compilable(low)) << c.name << " " << f.name();
      EXPECT_EQ(rt::codegen::lowered_program_semantics(low, f.program()).str(),
                f.certificate())
          << c.name << " " << f.name();
      ++checked;
    }
    EXPECT_GT(checked, 0u) << c.name;
  }
}

// --- compiled kernels vs the interpreter ------------------------------------

std::vector<float> random_vec(std::size_t n, std::uint32_t seed) {
  std::vector<float> v(n);
  std::uint32_t s = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    v[i] = static_cast<float>(s % 20011u) / 10005.5f - 1.0f;
  }
  return v;
}

struct FusedCase {
  std::vector<rt::DenseTensor> storage;
  std::vector<const rt::DenseTensor*> inputs;
  std::vector<double> alphas;

  FusedCase(const std::vector<std::int64_t>& elems,
            const std::vector<FusedInstr>& program) {
    storage.reserve(elems.size());
    for (std::size_t i = 0; i < elems.size(); ++i) {
      storage.emplace_back(std::vector<std::int64_t>{elems[i]},
                           ir::DataType::kFloat32);
      const auto v = random_vec(static_cast<std::size_t>(elems[i]),
                                static_cast<std::uint32_t>(91 + 3 * i));
      std::memcpy(storage.back().fdata(), v.data(), v.size() * sizeof(float));
    }
    for (const rt::DenseTensor& t : storage) inputs.push_back(&t);
    for (const FusedInstr& ins : program)
      alphas.push_back(ins.alpha.eval(sym::Bindings{}));
  }
};

std::vector<float> run_interp(const std::vector<FusedInstr>& program,
                              const FusedCase& c, std::int64_t n,
                              std::size_t threads) {
  conc::ThreadPool pool(threads);
  rt::DenseTensor out({n}, ir::DataType::kFloat32);
  rt::KernelStats stats;
  rt::fused_pointwise(program, c.inputs, c.alphas, out, pool, stats);
  return {out.fdata(), out.fdata() + n};
}

std::vector<float> run_simd(const std::vector<FusedInstr>& program,
                            const FusedCase& c, std::int64_t n,
                            std::size_t threads, SimdIsa isa) {
  conc::ThreadPool pool(threads);
  rt::DenseTensor out({n}, ir::DataType::kFloat32);
  rt::KernelStats stats;
  EXPECT_TRUE(
      rt::fused_pointwise_simd(program, c.inputs, c.alphas, out, pool, stats, isa));
  return {out.fdata(), out.fdata() + n};
}

std::vector<SimdIsa> supported_compiled_isas() {
  std::vector<SimdIsa> isas;
  for (const SimdIsa isa :
       {SimdIsa::kGeneric, SimdIsa::kAvx2, SimdIsa::kAvx512, SimdIsa::kNeon})
    if (hw::isa_supported(isa)) isas.push_back(isa);
  return isas;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

double max_rel_err(const std::vector<float>& a, const std::vector<float>& b) {
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max(std::abs(static_cast<double>(b[i])), 1.0);
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) - b[i]) / denom);
  }
  return worst;
}

/// Exact-IEEE program touching every bitwise-guaranteed fn, with a rank-1
/// broadcast input (periodic loads) and a splat input (one element).
std::vector<FusedInstr> exact_program() {
  return {
      {PointwiseFn::kAddN, {0, 1, 2}},               // 4
      {PointwiseFn::kScale, {4}, sym::Expr(0.125)},  // 5
      {PointwiseFn::kRelu, {5}},                     // 6
      {PointwiseFn::kSub, {6, 0}},                   // 7
      {PointwiseFn::kMul, {7, 3}},                   // 8: splat input
      {PointwiseFn::kReluGrad, {6, 8}},              // 9
      {PointwiseFn::kSigmoidGrad, {9, 7}},           // 10
      {PointwiseFn::kTanhGrad, {10, 9}},             // 11
      {PointwiseFn::kOneMinus, {11}},                // 12
      {PointwiseFn::kAdd, {12, 1}},                  // 13
  };
}

TEST(CompiledPointwise, ExactOpsBitwiseEqualInterpreterAcrossIsasAndThreads) {
  // Ragged n: not a multiple of any vector width or of the 4096 block.
  const std::int64_t n = 2 * 4096 + 37;
  const std::vector<FusedInstr> program = exact_program();
  const FusedCase c({n, n, 64, 1}, program);
  const std::vector<float> want = run_interp(program, c, n, 1);
  for (const SimdIsa isa : supported_compiled_isas())
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}})
      EXPECT_TRUE(bitwise_equal(run_simd(program, c, n, threads, isa), want))
          << hw::simd_isa_name(isa) << " threads=" << threads;
}

TEST(CompiledPointwise, SigmoidTanhEpsilonBoundedAcrossIsas) {
  const std::int64_t n = 4096 + 111;
  const std::vector<FusedInstr> program = {
      {PointwiseFn::kSigmoid, {0}},  // 2
      {PointwiseFn::kTanh, {1}},     // 3
      {PointwiseFn::kMul, {2, 3}},   // 4
      {PointwiseFn::kTanh, {4}},     // 5
  };
  const FusedCase c({n, n}, program);
  const std::vector<float> want = run_interp(program, c, n, 1);
  for (const SimdIsa isa : supported_compiled_isas()) {
    const double err = max_rel_err(run_simd(program, c, n, 1, isa), want);
    EXPECT_LE(err, 1e-5) << hw::simd_isa_name(isa);
  }
}

TEST(CompiledPointwise, SpecialValuesMatchInterpreterSemantics) {
  const std::int64_t n = 64;
  const std::vector<FusedInstr> program = {{PointwiseFn::kSigmoid, {0}},
                                           {PointwiseFn::kTanh, {1}}};
  FusedCase c({n, n}, program);
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (const float v : {inf, -inf, nan, 1e30f, -1e30f, 0.0f, -0.0f, 200.0f}) {
    c.storage[0].fdata()[0] = v;  // through sigmoid
    c.storage[1].fdata()[1] = v;  // through (outer) tanh
    const std::vector<float> want = run_interp(program, c, n, 1);
    for (const SimdIsa isa : supported_compiled_isas()) {
      const std::vector<float> got = run_simd(program, c, n, 1, isa);
      // NaN propagates; saturating values land within epsilon of the
      // interpreter's limit (0, 1, or ±1) — never UB, never garbage.
      EXPECT_EQ(std::isnan(got[0]), std::isnan(want[0]))
          << hw::simd_isa_name(isa) << " v=" << v;
      EXPECT_EQ(std::isnan(got[1]), std::isnan(want[1]))
          << hw::simd_isa_name(isa) << " v=" << v;
      EXPECT_LE(max_rel_err(got, want), 1e-5) << hw::simd_isa_name(isa) << " v=" << v;
    }
  }
}

TEST(CompiledPointwise, ThreadCountInvariantWithinEachIsa) {
  const std::int64_t n = 3 * 4096 + 1023;
  const std::vector<FusedInstr> program = {
      {PointwiseFn::kSigmoid, {0}},
      {PointwiseFn::kMul, {2, 1}},
      {PointwiseFn::kTanh, {3}},
  };
  const FusedCase c({n, 128}, program);
  for (const SimdIsa isa : supported_compiled_isas()) {
    const std::vector<float> want = run_simd(program, c, n, 1, isa);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}})
      EXPECT_TRUE(bitwise_equal(run_simd(program, c, n, threads, isa), want))
          << hw::simd_isa_name(isa) << " threads=" << threads;
  }
}

TEST(CompiledPointwise, RefusesOversizedLoadSets) {
  // One kAddN over more external inputs than the executor has load slots:
  // the compiled path must decline and leave the interpreter to serve it.
  const std::size_t num_inputs = 100;
  std::vector<int> args(num_inputs);
  for (std::size_t i = 0; i < num_inputs; ++i) args[i] = static_cast<int>(i);
  const std::vector<FusedInstr> program = {{PointwiseFn::kAddN, args}};
  const auto low = rt::codegen::lower_program(program, num_inputs);
  EXPECT_FALSE(rt::codegen::compilable(low));

  const std::int64_t n = 256;
  FusedCase c(std::vector<std::int64_t>(num_inputs, n), program);
  conc::ThreadPool pool(1);
  rt::DenseTensor out({n}, ir::DataType::kFloat32);
  rt::KernelStats stats;
  EXPECT_FALSE(rt::fused_pointwise_simd(program, c.inputs, c.alphas, out, pool,
                                        stats, hw::best_simd_isa()));
}

// --- GEMM micro-kernel ------------------------------------------------------

class GemmTileTest : public ::testing::Test {
 protected:
  void TearDown() override { rt::codegen::set_forced_isa(std::nullopt); }
};

TEST_F(GemmTileTest, CompiledMicroKernelBitwiseEqualsScalarTile) {
  conc::ThreadPool pool(2);
  struct Shape {
    std::int64_t m, n, k;
    bool ta, tb;
  };
  // Odd extents force ragged edge tiles through both micro-kernels.
  const std::vector<Shape> shapes = {
      {67, 35, 129, false, false},
      {64, 64, 64, true, false},
      {33, 130, 47, false, true},
  };
  for (const Shape& s : shapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m * s.k), 3);
    const auto b = random_vec(static_cast<std::size_t>(s.k * s.n), 5);
    std::vector<float> c_scalar(static_cast<std::size_t>(s.m * s.n));
    std::vector<float> c_simd(c_scalar.size());

    rt::codegen::set_forced_isa(SimdIsa::kScalar);
    rt::blocked_gemm(a.data(), b.data(), c_scalar.data(), 1, s.m, s.n, s.k, s.ta,
                     s.tb, 0, 0, 0, rt::default_gemm_tiling(), pool);
    rt::codegen::set_forced_isa(hw::best_simd_isa());
    rt::blocked_gemm(a.data(), b.data(), c_simd.data(), 1, s.m, s.n, s.k, s.ta,
                     s.tb, 0, 0, 0, rt::default_gemm_tiling(), pool);
    EXPECT_TRUE(bitwise_equal(c_scalar, c_simd))
        << s.m << "x" << s.n << "x" << s.k << " ta=" << s.ta << " tb=" << s.tb;
  }
}

// --- executor integration ---------------------------------------------------

float loss_after_step(const models::ModelSpec& spec, double hidden, bool simd,
                      std::size_t threads) {
  conc::ThreadPool pool(threads);
  rt::ExecutorOptions opt;
  opt.pool = &pool;
  opt.fuse = true;
  opt.simd = simd;
  rt::Executor ex(*spec.graph, spec.bind(hidden, 2), opt);
  ex.retain(spec.loss);
  ex.run_step();
  return ex.value(spec.loss).f(0);
}

TEST(SimdExecutor, EpsilonParityWithInterpreterOnAllModelsAcrossThreads) {
  for (ModelCase& c : builtin_models()) {
    const float want = loss_after_step(c.spec, c.hidden, false, 1);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      const float got = loss_after_step(c.spec, c.hidden, true, threads);
      EXPECT_NEAR(got, want, std::abs(want) * 1e-4 + 1e-6)
          << c.name << " threads=" << threads;
    }
  }
}

TEST(SimdExecutor, ScalarPathBitwiseDeterministicAcrossThreads) {
  // simd off = the seed interpreter path: bit-identical results regardless
  // of thread count (the pre-codegen acceptance bar, restated).
  ModelCase c = builtin_models().front();
  float want = loss_after_step(c.spec, c.hidden, false, 1);
  std::uint32_t want_bits = 0;
  std::memcpy(&want_bits, &want, sizeof want_bits);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    float got = loss_after_step(c.spec, c.hidden, false, threads);
    std::uint32_t got_bits = 0;
    std::memcpy(&got_bits, &got, sizeof got_bits);
    EXPECT_EQ(got_bits, want_bits) << "threads=" << threads;
  }
}

whatif::Trace profile_fused(const models::ModelSpec& spec, double hidden,
                            bool simd) {
  conc::ThreadPool pool(2);
  rt::ExecutorOptions opt;
  opt.pool = &pool;
  opt.fuse = true;
  opt.simd = simd;
  rt::Executor ex(*spec.graph, spec.bind(hidden, 2), opt);
  return whatif::from_report(ex.run_step());
}

TEST(SimdExecutor, TimelineTagsKernelClassByServingPath) {
  ModelCase c = builtin_models().front();
  for (const bool simd : {false, true}) {
    const whatif::Trace trace = profile_fused(c.spec, c.hidden, simd);
    const char* expected = simd ? "pointwise-simd" : "pointwise-interp";
    std::size_t fused_ops = 0;
    for (const whatif::TraceOp& op : trace.ops) {
      if (op.type != "FusedPointwise") continue;
      ++fused_ops;
      EXPECT_EQ(op.kernel_class, expected) << op.name;
    }
    EXPECT_GT(fused_ops, 0u);
  }
}

TEST(SimdExecutor, ChromeTraceRoundTripPreservesKernelClass) {
  ModelCase c = builtin_models().front();
  conc::ThreadPool pool(1);
  rt::ExecutorOptions opt;
  opt.pool = &pool;
  opt.fuse = true;
  opt.simd = true;
  rt::Executor ex(*c.spec.graph, c.spec.bind(c.hidden, 2), opt);
  const rt::ProfileReport report = ex.run_step();

  std::stringstream ss;
  report.write_chrome_trace(ss);
  const whatif::Trace loaded = whatif::load_trace(ss);
  const whatif::Trace direct = whatif::from_report(report);
  ASSERT_EQ(loaded.ops.size(), direct.ops.size());
  std::size_t tagged = 0;
  for (std::size_t i = 0; i < loaded.ops.size(); ++i) {
    EXPECT_EQ(loaded.ops[i].kernel_class, direct.ops[i].kernel_class)
        << direct.ops[i].name;
    if (!loaded.ops[i].kernel_class.empty()) ++tagged;
  }
  EXPECT_GT(tagged, 0u);
}

}  // namespace
}  // namespace gf

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/symbolic/expr.h"
#include "src/symbolic/sign.h"

namespace gf::sym {
namespace {

const Expr x = Expr::symbol("x");
const Expr y = Expr::symbol("y");
const Expr z = Expr::symbol("z");

TEST(Rational, NormalizesSignAndGcd) {
  Rational r(4, -6);
  EXPECT_EQ(r.num, -2);
  EXPECT_EQ(r.den, 3);
  EXPECT_EQ((Rational(1, 2) + Rational(1, 2)), Rational(1));
  EXPECT_EQ((Rational(1, 2) * Rational(2, 3)), Rational(1, 3));
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Expr, ConstantsFold) {
  EXPECT_TRUE((Expr(2) + Expr(3)).is_constant());
  EXPECT_DOUBLE_EQ((Expr(2) + Expr(3)).constant_value(), 5.0);
  EXPECT_DOUBLE_EQ((Expr(2) * Expr(3) - Expr(10)).constant_value(), -4.0);
  EXPECT_DOUBLE_EQ(pow(Expr(9), Rational(1, 2)).constant_value(), 3.0);
  EXPECT_DOUBLE_EQ(log(Expr(std::exp(1.0))).constant_value(), 1.0);
}

TEST(Expr, LikeTermsCollect) {
  const Expr e = x + x + Expr(2) * x;
  EXPECT_TRUE(e.equals(Expr(4) * x));
}

TEST(Expr, CancellationYieldsZero) {
  const Expr e = x * y - y * x;
  EXPECT_TRUE(e.is_constant());
  EXPECT_DOUBLE_EQ(e.constant_value(), 0.0);
}

TEST(Expr, MulIsCommutativeCanonically) {
  EXPECT_TRUE((x * y).equals(y * x));
  EXPECT_TRUE((x * y * z).equals(z * y * x));
}

TEST(Expr, AddIsCommutativeCanonically) {
  EXPECT_TRUE((x + y + z).equals(z + x + y));
}

TEST(Expr, PowersMerge) {
  EXPECT_TRUE((x * x).equals(pow(x, Rational(2))));
  EXPECT_TRUE((sqrt(x) * sqrt(x)).equals(x));
  EXPECT_TRUE((x / x).is_constant());
  EXPECT_DOUBLE_EQ((x / x).constant_value(), 1.0);
}

TEST(Expr, PowOfPowCombines) {
  EXPECT_TRUE(pow(pow(x, Rational(2)), Rational(3)).equals(pow(x, Rational(6))));
  EXPECT_TRUE(sqrt(pow(x, Rational(2))).equals(x));
}

TEST(Expr, PowDistributesOverProducts) {
  // sqrt(4*x) == 2*sqrt(x) for the positive dimensions we model.
  EXPECT_TRUE(sqrt(Expr(4) * x).equals(Expr(2) * sqrt(x)));
}

TEST(Expr, EvalBindsSymbols) {
  const Expr e = Expr(3) * x * x + Expr(2) * y;
  EXPECT_DOUBLE_EQ(e.eval({{"x", 2.0}, {"y", 5.0}}), 22.0);
}

TEST(Expr, EvalThrowsOnUnboundSymbol) {
  EXPECT_THROW((x + y).eval({{"x", 1.0}}), std::runtime_error);
}

TEST(Expr, PartialSubstitution) {
  const Expr e = x * y + y;
  const Expr s = e.subs(Bindings{{"x", 3.0}});
  EXPECT_TRUE(s.equals(Expr(4) * y));
  EXPECT_EQ(s.free_symbols(), std::set<std::string>{"y"});
}

TEST(Expr, SymbolForSymbolSubstitution) {
  const Expr e = x * x + x;
  const Expr s = e.subs(std::map<std::string, Expr, std::less<>>{{"x", y + Expr(1)}});
  // (y+1)^2 + (y+1) evaluated at y=2 should be 12.
  EXPECT_DOUBLE_EQ(s.eval({{"y", 2.0}}), 12.0);
}

TEST(Expr, MaxSemantics) {
  const Expr m = max(x, y);
  EXPECT_DOUBLE_EQ(m.eval({{"x", 3.0}, {"y", 7.0}}), 7.0);
  EXPECT_TRUE(max(x, x).equals(x));
  EXPECT_DOUBLE_EQ(max(Expr(3), Expr(9)).constant_value(), 9.0);
  // Nested maxes flatten.
  EXPECT_TRUE(max(max(x, y), z).equals(max(x, max(y, z))));
}

TEST(Expr, FreeSymbols) {
  const Expr e = x * y + sqrt(z);
  EXPECT_EQ(e.free_symbols(), (std::set<std::string>{"x", "y", "z"}));
  EXPECT_TRUE(Expr(5).free_symbols().empty());
}

TEST(Expr, DivisionRendersAsQuotient) {
  const Expr e = x / y;
  EXPECT_EQ(e.str(), "x/y");
}

TEST(Expr, SqrtRendering) {
  EXPECT_EQ(sqrt(x).str(), "sqrt(x)");
  EXPECT_EQ(pow(x, Rational(2)).str(), "x^2");
}

TEST(Expr, StrIsDeterministic) {
  const Expr a = x * y + Expr(2) * z;
  const Expr b = Expr(2) * z + y * x;
  EXPECT_EQ(a.str(), b.str());
}

TEST(Expr, SubtractionRendering) {
  const Expr e = x - y;
  EXPECT_EQ(e.str(), "x - y");
}

TEST(Expr, NegativeExponentEval) {
  const Expr e = Expr(6) / x;
  EXPECT_DOUBLE_EQ(e.eval({{"x", 3.0}}), 2.0);
}

TEST(Expr, PaperStyleOperationalIntensityForm) {
  // The Table 2 operational intensity form: b*sqrt(p)/(3.65*sqrt(p) + 64*b).
  const Expr b = Expr::symbol("b");
  const Expr p = Expr::symbol("p");
  const Expr oi = b * sqrt(p) / (Expr(3.65) * sqrt(p) + Expr(64) * b);
  const double v = oi.eval({{"b", 128.0}, {"p", 23.8e9}});
  // For b fixed and p -> inf, intensity approaches b/3.65 = 35.07.
  EXPECT_NEAR(v, 128.0 * std::sqrt(23.8e9) / (3.65 * std::sqrt(23.8e9) + 64 * 128.0),
              1e-9);
  const double limit = oi.eval({{"b", 128.0}, {"p", 1e30}});
  EXPECT_NEAR(limit, 128.0 / 3.65, 1e-3);
}

TEST(Expr, SymbolNameValidation) {
  EXPECT_THROW(Expr::symbol(""), std::invalid_argument);
}

TEST(Expr, AccessorsThrowOnWrongKind) {
  EXPECT_THROW(x.constant_value(), std::logic_error);
  EXPECT_THROW(Expr(3).symbol_name(), std::logic_error);
}

// --- sign analysis (src/symbolic/sign.h) -----------------------------------
// All under the standing assumption that free symbols are > 0.

TEST(Sign, ConstantsAndSymbols) {
  EXPECT_EQ(sign_of(Expr(3)), Sign::kPositive);
  EXPECT_EQ(sign_of(Expr(0)), Sign::kZero);
  EXPECT_EQ(sign_of(Expr(-2)), Sign::kNegative);
  EXPECT_EQ(sign_of(x), Sign::kPositive);
}

TEST(Sign, SumsAndProducts) {
  const Expr y = Expr::symbol("y");
  EXPECT_EQ(sign_of(x + y + Expr(1)), Sign::kPositive);
  EXPECT_EQ(sign_of(x * y), Sign::kPositive);
  EXPECT_EQ(sign_of(-x), Sign::kNegative);
  EXPECT_EQ(sign_of(Expr(-3) * x * y), Sign::kNegative);
  EXPECT_EQ(sign_of(x - x), Sign::kZero);
  EXPECT_EQ(sign_of(x - Expr(1)), Sign::kUnknown);  // x>0 does not bound x-1
  EXPECT_EQ(sign_of(-x - Expr(2)), Sign::kNegative);
}

TEST(Sign, PowersLogsAndMax) {
  EXPECT_EQ(sign_of(sqrt(x)), Sign::kPositive);
  EXPECT_EQ(sign_of(Expr(6) / x), Sign::kPositive);
  EXPECT_EQ(sign_of(pow(x - Expr(1), Rational{2, 1})), Sign::kNonNegative);
  EXPECT_EQ(sign_of(log(x)), Sign::kUnknown);  // log(x) < 0 for x < 1
  EXPECT_EQ(sign_of(max(x - Expr(5), Expr(1))), Sign::kPositive);
}

TEST(Sign, AbsoluteValueAndAnnihilatingProducts) {
  // max(a, -a) = |a| >= 0, even though each argument alone has unknown
  // sign; min-of-mixed-signs reaches this shape since min(a, b) enters
  // canonical form as -max(-a, -b).
  EXPECT_EQ(sign_of(max(log(x), -log(x))), Sign::kNonNegative);
  EXPECT_EQ(sign_of(-max(log(x), -log(x))), Sign::kNonPositive);
  // A provably-zero factor annihilates the product even when an earlier
  // factor's sign is unknown.
  EXPECT_EQ(sign_of((x - Expr(1)) * max(-x, Expr(0))), Sign::kZero);
}

TEST(Sign, ProvablyHelpers) {
  EXPECT_TRUE(provably_positive(x * Expr(2)));
  EXPECT_FALSE(provably_positive(x - Expr(1)));
  EXPECT_TRUE(provably_nonnegative(Expr(0)));
  EXPECT_TRUE(provably_nonnegative(pow(x - Expr(1), Rational{2, 1})));
  EXPECT_FALSE(provably_nonnegative(Expr(1) - x));
}

}  // namespace
}  // namespace gf::sym

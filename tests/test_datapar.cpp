// Data-parallel runner tests: the bucketing/chunking/tree-reduction
// helpers, and the headline contract — averaged gradients, weights, and
// the step loss are bitwise-identical for every valid worker count, with
// N=1/S=1 degenerating to the plain single-executor path exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include "src/ir/gradients.h"
#include "src/runtime/datapar.h"
#include "src/runtime/executor.h"
#include "src/whatif/trace.h"

namespace gf::rt {
namespace {

using ir::Graph;
using ir::Tensor;
using sym::Bindings;
using sym::Expr;

struct TinyMlp {
  Graph g{"mlp"};
  Tensor* loss = nullptr;
  Tensor* w1 = nullptr;
  Tensor* w2 = nullptr;

  explicit TinyMlp(ir::Optimizer opt = ir::Optimizer::kSGD) {
    const Expr b = Expr::symbol("batch");
    Tensor* x = g.add_input("x", {b, Expr(6)});
    Tensor* labels = g.add_input("labels", {b}, ir::DataType::kInt32);
    w1 = g.add_weight("w1", {Expr(6), Expr(8)});
    Tensor* b1 = g.add_weight("b1", {Expr(8)});
    w2 = g.add_weight("w2", {Expr(8), Expr(3)});
    Tensor* h = ir::tanh(g, "act", ir::bias_add(g, "ba", ir::matmul(g, "fc1", x, w1), b1));
    auto [per_row, probs] = ir::softmax_xent(g, "xent", ir::matmul(g, "fc2", h, w2), labels);
    (void)probs;
    loss = ir::reduce_mean(g, "loss", per_row);
    ir::build_training_step(g, loss, {.optimizer = opt});
  }
};

/// A model with exactly one weight — one gradient, one bucket.
struct OneWeight {
  Graph g{"one"};
  Tensor* loss = nullptr;
  Tensor* w1 = nullptr;  ///< named like TinyMlp's so run_steps works on both

  OneWeight() {
    const Expr b = Expr::symbol("batch");
    Tensor* x = g.add_input("x", {b, Expr(4)});
    w1 = g.add_weight("w", {Expr(4), Expr(1)});
    Tensor* y = ir::tanh(g, "act", ir::matmul(g, "fc", x, w1));
    loss = ir::reduce_mean(g, "loss", y);
    ir::build_training_step(g, loss, {});
  }
};

std::vector<std::uint32_t> float_bits(const DenseTensor& t) {
  std::vector<std::uint32_t> bits(static_cast<std::size_t>(t.numel()));
  std::memcpy(bits.data(), t.fdata(), bits.size() * sizeof(std::uint32_t));
  return bits;
}

std::uint32_t bits_of(float f) {
  std::uint32_t u = 0;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

// ---------------------------------------------------------------------------
// Pure helpers
// ---------------------------------------------------------------------------

TEST(PlanBuckets, PacksGreedilyWithoutSplitting) {
  const auto buckets = plan_buckets({10, 10, 10, 10}, 25);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].elems, 20u);
  EXPECT_EQ(buckets[1].elems, 20u);
  EXPECT_EQ(buckets[0].slices[1].offset, 10u);
  EXPECT_EQ(buckets[1].slices[0].grad_index, 2u);
}

TEST(PlanBuckets, OversizedGradientGetsOwnBucket) {
  const auto buckets = plan_buckets({4, 100, 4}, 16);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].elems, 4u);
  EXPECT_EQ(buckets[1].elems, 100u);
  ASSERT_EQ(buckets[1].slices.size(), 1u);
  EXPECT_EQ(buckets[2].elems, 4u);
}

TEST(PlanBuckets, SingleParameterModel) {
  const auto buckets = plan_buckets({7}, 1024);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].elems, 7u);
}

TEST(PlanBuckets, RejectsZeroTarget) {
  EXPECT_THROW(plan_buckets({1}, 0), std::invalid_argument);
}

TEST(ChunkRanges, EvenSplit) {
  const auto chunks = chunk_ranges(8, 4);
  ASSERT_EQ(chunks.size(), 4u);
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(chunks[w].first, 2 * w);
    EXPECT_EQ(chunks[w].second, 2u);
  }
}

TEST(ChunkRanges, RaggedTail) {
  const auto chunks = chunk_ranges(10, 4);  // ceil = 3: 3, 3, 3, 1
  EXPECT_EQ(chunks[3].first, 9u);
  EXPECT_EQ(chunks[3].second, 1u);
}

TEST(ChunkRanges, BucketSmallerThanWorkerCount) {
  const auto chunks = chunk_ranges(2, 4);  // 1, 1, then empty
  EXPECT_EQ(chunks[0].second, 1u);
  EXPECT_EQ(chunks[1].second, 1u);
  EXPECT_EQ(chunks[2].second, 0u);
  EXPECT_EQ(chunks[3].second, 0u);
}

TEST(PairwiseTreeReduce, SingleSourceIsACopy) {
  const float src[3] = {1.5f, -2.0f, 0.25f};
  const float* srcs[1] = {src};
  float dst[3] = {};
  pairwise_tree_reduce(dst, srcs, 1, 3);
  EXPECT_EQ(std::memcmp(dst, src, sizeof(src)), 0);
}

TEST(PairwiseTreeReduce, UsesAdjacentPairingAssociation) {
  // Values chosen so association changes the rounding: the tree result for
  // 5 leaves must be ((a+b)+(c+d))+e exactly.
  const float v[5] = {1e8f, 1.0f, -1e8f, 1.0f, 0.5f};
  const float* srcs[5] = {&v[0], &v[1], &v[2], &v[3], &v[4]};
  float out = 0;
  pairwise_tree_reduce(&out, srcs, 5, 1);
  const float expected = ((v[0] + v[1]) + (v[2] + v[3])) + v[4];
  EXPECT_EQ(bits_of(out), bits_of(expected));
}

// The property the runner's worker-count independence rests on: reducing
// S leaves directly equals reducing each contiguous power-of-two block
// first and then the block sums — bitwise.
TEST(PairwiseTreeReduce, BlockDecompositionIsExact) {
  constexpr std::size_t kLeaves = 8;
  constexpr std::size_t kElems = 64;
  std::vector<std::vector<float>> leaves(kLeaves, std::vector<float>(kElems));
  unsigned state = 12345;
  for (auto& leaf : leaves)
    for (float& x : leaf) {
      state = state * 1664525u + 1013904223u;
      x = static_cast<float>(static_cast<int>(state >> 8) % 1000) * 1e-3f +
          static_cast<float>(state % 7) * 1e8f;  // mix magnitudes
    }
  std::vector<const float*> all(kLeaves);
  for (std::size_t i = 0; i < kLeaves; ++i) all[i] = leaves[i].data();
  std::vector<float> direct(kElems);
  pairwise_tree_reduce(direct.data(), all.data(), kLeaves, kElems);

  for (std::size_t blocks : {1u, 2u, 4u, 8u}) {
    const std::size_t per = kLeaves / blocks;
    std::vector<std::vector<float>> sums(blocks, std::vector<float>(kElems));
    for (std::size_t b = 0; b < blocks; ++b)
      pairwise_tree_reduce(sums[b].data(), all.data() + b * per, per, kElems);
    std::vector<const float*> tops(blocks);
    for (std::size_t b = 0; b < blocks; ++b) tops[b] = sums[b].data();
    std::vector<float> via_blocks(kElems);
    pairwise_tree_reduce(via_blocks.data(), tops.data(), blocks, kElems);
    EXPECT_EQ(std::memcmp(via_blocks.data(), direct.data(), kElems * sizeof(float)), 0)
        << blocks << " blocks";
  }
}

// ---------------------------------------------------------------------------
// Runner: validation
// ---------------------------------------------------------------------------

TEST(DataParallel, RejectsInvalidShardCounts) {
  TinyMlp m;
  const Bindings bind{{"batch", 32}};
  DataParallelOptions opt;
  opt.workers = 3;  // 8 % 3 != 0
  EXPECT_THROW(DataParallelRunner(m.g, m.loss, bind, opt), std::invalid_argument);
  opt.workers = 4;
  opt.grad_shards = 12;  // 12/4 = 3: not a power of two
  EXPECT_THROW(DataParallelRunner(m.g, m.loss, bind, opt), std::invalid_argument);
  opt.grad_shards = 8;
  EXPECT_THROW(DataParallelRunner(m.g, m.loss, Bindings{{"batch", 20}}, opt),
               std::invalid_argument);  // 20 % 8 != 0
  EXPECT_THROW(DataParallelRunner(m.g, m.loss, Bindings{}, opt), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Runner: bitwise worker-count independence
// ---------------------------------------------------------------------------

struct StepRecord {
  std::uint32_t loss_bits = 0;
  std::vector<std::vector<std::uint32_t>> grad_bits;
  std::vector<std::vector<std::uint32_t>> weight_bits;
};

template <typename Model>
std::vector<StepRecord> run_steps(Model& m, int workers, int steps,
                                  DataParallelOptions opt, int batch = 32) {
  opt.workers = workers;
  DataParallelRunner runner(m.g, m.loss, Bindings{{"batch", batch}}, opt);
  std::vector<StepRecord> out;
  for (int s = 0; s < steps; ++s) {
    const DataParallelStepResult res = runner.step();
    StepRecord rec;
    rec.loss_bits = bits_of(res.loss);
    for (const ir::Tensor* grad : runner.gradient_tensors())
      rec.grad_bits.push_back(float_bits(runner.averaged_gradient(grad)));
    for (int w = 0; w < workers; ++w) {
      Executor& ex = runner.worker_executor(w);
      rec.weight_bits.push_back(float_bits(ex.weight_value(m.w1)));
    }
    out.push_back(std::move(rec));
  }
  return out;
}

void expect_identical(const std::vector<StepRecord>& a, const std::vector<StepRecord>& b,
                      const char* label) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].loss_bits, b[s].loss_bits) << label << " loss, step " << s;
    ASSERT_EQ(a[s].grad_bits.size(), b[s].grad_bits.size());
    for (std::size_t g = 0; g < a[s].grad_bits.size(); ++g)
      EXPECT_EQ(a[s].grad_bits[g], b[s].grad_bits[g]) << label << " grad " << g
                                                      << ", step " << s;
    // Every worker must hold the same weights as every reference worker.
    for (const auto& wa : a[s].weight_bits)
      for (const auto& wb : b[s].weight_bits)
        EXPECT_EQ(wa, wb) << label << " weights, step " << s;
  }
}

TEST(DataParallel, BitwiseIdenticalAcrossWorkerCounts) {
  DataParallelOptions opt;
  opt.grad_shards = 8;
  TinyMlp ref_model;
  const auto reference = run_steps(ref_model, 1, 3, opt);
  for (int workers : {2, 4, 8}) {
    TinyMlp m;
    expect_identical(run_steps(m, workers, 3, opt), reference,
                     ("N=" + std::to_string(workers)).c_str());
  }
}

TEST(DataParallel, BitwiseIdenticalWithAdamAndTinyBuckets) {
  // Tiny buckets force many buckets, ragged chunks, and chunks smaller
  // than the worker count; Adam exercises multi-slot optimizer state.
  DataParallelOptions opt;
  opt.grad_shards = 8;
  opt.bucket_bytes = 64;  // 16 floats: every TinyMlp gradient fragments hard
  TinyMlp ref_model(ir::Optimizer::kAdam);
  const auto reference = run_steps(ref_model, 1, 2, opt);
  for (int workers : {2, 4}) {
    TinyMlp m(ir::Optimizer::kAdam);
    expect_identical(run_steps(m, workers, 2, opt), reference, "adam/tiny-bucket");
  }
}

TEST(DataParallel, SingleParameterModelParity) {
  DataParallelOptions opt;
  opt.grad_shards = 4;
  OneWeight ref_model;
  const auto reference = run_steps(ref_model, 1, 2, opt, 16);
  for (int workers : {2, 4}) {
    OneWeight m;
    expect_identical(run_steps(m, workers, 2, opt, 16), reference, "one-weight");
  }
}

TEST(DataParallel, OverlapDoesNotChangeBits) {
  DataParallelOptions on;
  on.grad_shards = 8;
  on.overlap = true;
  on.threads_per_worker = 2;  // retire callbacks race harder on a wider pool
  DataParallelOptions off = on;
  off.overlap = false;
  TinyMlp m1;
  TinyMlp m2;
  // 3 steps: step 1 primes (overlap off internally), steps 2-3 actually
  // overlap communication with backward compute.
  expect_identical(run_steps(m1, 4, 3, on), run_steps(m2, 4, 3, off), "overlap");
}

TEST(DataParallel, StragglersChangeTimingNotBits) {
  DataParallelOptions jittered;
  jittered.grad_shards = 8;
  jittered.straggler_sigma = 0.2;
  jittered.straggler_scale_seconds = 1e-4;
  DataParallelOptions clean = jittered;
  clean.straggler_sigma = 0;
  TinyMlp m1;
  TinyMlp m2;
  expect_identical(run_steps(m1, 2, 2, jittered), run_steps(m2, 2, 2, clean),
                   "stragglers");
}

TEST(DataParallel, StragglerScheduleIsDeterministic) {
  TinyMlp m1;
  TinyMlp m2;
  DataParallelOptions opt;
  opt.workers = 2;
  opt.grad_shards = 8;
  opt.straggler_sigma = 0.1;
  DataParallelRunner a(m1.g, m1.loss, Bindings{{"batch", 32}}, opt);
  DataParallelRunner b(m2.g, m2.loss, Bindings{{"batch", 32}}, opt);
  double total = 0;
  for (int w = 0; w < 2; ++w)
    for (int s = 0; s < a.micro_steps(); ++s) {
      EXPECT_EQ(a.straggler_delay(w, s), b.straggler_delay(w, s));
      total += a.straggler_delay(w, s);
    }
  EXPECT_GT(total, 0.0);
}

// ---------------------------------------------------------------------------
// Runner: degenerate N=1/S=1 path vs the plain executor
// ---------------------------------------------------------------------------

TEST(DataParallel, DegeneratesToPlainExecutorBitwise) {
  const Bindings bind{{"batch", 16}};
  TinyMlp plain_model;
  Executor ex(plain_model.g, bind);
  ex.retain(plain_model.loss);

  TinyMlp dp_model;
  DataParallelOptions opt;
  opt.workers = 1;
  opt.grad_shards = 1;
  DataParallelRunner runner(dp_model.g, dp_model.loss, bind, opt);

  for (int s = 0; s < 3; ++s) {
    ex.run_step();
    const float plain_loss = ex.value(plain_model.loss).f(0);
    const DataParallelStepResult res = runner.step();
    EXPECT_EQ(bits_of(res.loss), bits_of(plain_loss)) << "step " << s;
    EXPECT_EQ(float_bits(runner.worker_executor(0).weight_value(dp_model.w1)),
              float_bits(ex.weight_value(plain_model.w1)))
        << "step " << s;
    EXPECT_EQ(float_bits(runner.worker_executor(0).weight_value(dp_model.w2)),
              float_bits(ex.weight_value(plain_model.w2)))
        << "step " << s;
  }
}

// ---------------------------------------------------------------------------
// Runner: merged timeline
// ---------------------------------------------------------------------------

TEST(DataParallel, MergedTimelineIsWhatifLoadable) {
  TinyMlp m;
  DataParallelOptions opt;
  opt.workers = 2;
  opt.grad_shards = 4;
  DataParallelRunner runner(m.g, m.loss, Bindings{{"batch", 16}}, opt);
  runner.step();                                      // priming step
  const DataParallelStepResult res = runner.step();   // overlapped step

  std::size_t ring_events = 0;
  for (const TimelineEvent& e : res.timeline.timeline) {
    if (e.category == "comm") {
      ++ring_events;
      EXPECT_EQ(e.kernel_class, "ring-allreduce");
    }
  }
  EXPECT_EQ(ring_events, 2 * runner.buckets().size() * 2u);  // 2 phases x B x N

  // Dense, causally ordered indices with forward deps: exactly what
  // whatif::load_trace + validate_trace enforce.
  std::ostringstream json;
  res.timeline.write_chrome_trace(json);
  std::istringstream in(json.str());
  const whatif::Trace trace = whatif::load_trace(in);
  EXPECT_EQ(trace.ops.size(), res.timeline.timeline.size());
  whatif::validate_trace(trace);  // throws on any structural violation
  bool saw_comm = false;
  for (const auto& op : trace.ops)
    if (op.kernel_class == "ring-allreduce") saw_comm = true;
  EXPECT_TRUE(saw_comm);
}

TEST(DataParallel, ReportsBucketAndWorkerStats) {
  TinyMlp m;
  DataParallelOptions opt;
  opt.workers = 2;
  opt.grad_shards = 8;
  DataParallelRunner runner(m.g, m.loss, Bindings{{"batch", 32}}, opt);
  const DataParallelStepResult res = runner.step();
  ASSERT_EQ(res.workers.size(), 2u);
  ASSERT_EQ(res.buckets.size(), runner.buckets().size());
  double payload = 0;
  for (const BucketStats& b : res.buckets) {
    EXPECT_GT(b.payload_bytes, 0u);
    EXPECT_GE(b.ring_seconds(), 0.0);
    payload += static_cast<double>(b.payload_bytes);
  }
  EXPECT_EQ(payload, runner.total_gradient_bytes());
  for (const WorkerStepStats& w : res.workers) EXPECT_GT(w.compute_seconds, 0.0);
}

}  // namespace
}  // namespace gf::rt

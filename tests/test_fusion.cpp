// Fusion subsystem tests: rewrite structure (chains, trees, broadcast
// absorption, GEMM epilogues), cost transparency (FLOPs conserved, bytes
// reduced, memplan slab never larger), the "fusion" verify pass with
// hand-broken negative cases, fused-graph serialization round-trips,
// clone_graph id preservation, and the end-to-end acceptance bar:
// fused execution bitwise-equal to unfused on every built-in model
// across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/concurrency/thread_pool.h"
#include "src/ir/footprint.h"
#include "src/ir/fusion.h"
#include "src/ir/gradients.h"
#include "src/ir/ops.h"
#include "src/ir/serialize.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"
#include "src/runtime/memplan.h"
#include "src/verify/pass.h"

namespace gf {
namespace {

using ir::Graph;
using ir::Op;
using ir::OpType;
using ir::PointwiseFn;
using ir::Tensor;
using sym::Bindings;
using sym::Expr;

struct TinyMlp {
  Graph g{"mlp"};
  Tensor* loss = nullptr;

  TinyMlp() {
    const Expr b = Expr::symbol("batch");
    Tensor* x = g.add_input("x", {b, Expr(6)});
    Tensor* labels = g.add_input("labels", {b}, ir::DataType::kInt32);
    Tensor* w1 = g.add_weight("w1", {Expr(6), Expr(8)});
    Tensor* b1 = g.add_weight("b1", {Expr(8)});
    Tensor* w2 = g.add_weight("w2", {Expr(8), Expr(3)});
    Tensor* h = ir::tanh(g, "act", ir::bias_add(g, "ba", ir::matmul(g, "fc1", x, w1), b1));
    auto [per_row, probs] = ir::softmax_xent(g, "xent", ir::matmul(g, "fc2", h, w2), labels);
    (void)probs;
    loss = ir::reduce_mean(g, "loss", per_row);
    ir::build_training_step(g, loss, {});
  }
};

struct ModelCase {
  const char* name;
  models::ModelSpec spec;
  double hidden;
};

/// All six built-in model families at toy sizes.
std::vector<ModelCase> builtin_models() {
  std::vector<ModelCase> cases;
  {
    models::WordLmConfig cfg;
    cfg.vocab = 40;
    cfg.seq_length = 5;
    cfg.layers = 2;
    cases.push_back({"word_lm", models::build_word_lm(cfg), 8});
  }
  {
    models::CharLmConfig cfg;
    cfg.vocab = 20;
    cfg.depth = 3;
    cfg.seq_length = 4;
    cases.push_back({"char_lm", models::build_char_lm(cfg), 8});
  }
  {
    models::NmtConfig cfg;
    cfg.vocab_src = 30;
    cfg.vocab_tgt = 30;
    cfg.src_length = 4;
    cfg.tgt_length = 3;
    cfg.decoder_layers = 1;
    cases.push_back({"nmt", models::build_nmt(cfg), 8});
  }
  {
    models::SpeechConfig cfg;
    cfg.audio_frames = 8;
    cfg.feature_dim = 5;
    cfg.encoder_layers = 2;
    cfg.decoder_length = 3;
    cfg.vocab = 15;
    cases.push_back({"speech", models::build_speech(cfg), 6});
  }
  {
    models::ResNetConfig cfg;
    cfg.depth = 18;
    cfg.image_size = 32;
    cfg.classes = 10;
    cases.push_back({"resnet", models::build_resnet(cfg), 4});
  }
  {
    models::TransformerLmConfig cfg;
    cfg.vocab = 40;
    cfg.layers = 2;
    cfg.seq_length = 6;
    cases.push_back({"transformer_lm", models::build_transformer_lm(cfg), 8});
  }
  return cases;
}

std::size_t fusion_error_count(const Graph& g) {
  std::size_t n = 0;
  for (const auto& d : verify::verify_graph(g).diagnostics)
    if (d.severity == verify::Severity::kError && d.pass == "fusion") ++n;
  return n;
}

std::size_t total_error_count(const Graph& g) {
  return verify::verify_graph(g).count(verify::Severity::kError);
}

std::size_t count_ops(const Graph& g, OpType type) {
  std::size_t n = 0;
  for (const auto& op : g.ops())
    if (op->type() == type) ++n;
  return n;
}

/// The fused op with the longest program (groups of one member plus an
/// absorbed broadcast are legal, so "the" interesting op is the biggest).
ir::FusedPointwiseOp* largest_fused(Graph& g) {
  ir::FusedPointwiseOp* best = nullptr;
  for (const auto& op : g.ops())
    if (op->type() == OpType::kFusedPointwise) {
      auto* f = static_cast<ir::FusedPointwiseOp*>(op.get());
      if (best == nullptr || f->program().size() > best->program().size()) best = f;
    }
  return best;
}

// --- rewrite structure ------------------------------------------------------

TEST(Fusion, FoldsGemmEpilogueAndConservesCosts) {
  TinyMlp m;
  const Bindings bind{{"batch", 16}};
  const double flops_before = m.g.total_flops().eval(bind);
  const double bytes_before = m.g.total_bytes_accessed().eval(bind);
  const std::size_t ops_before = m.g.num_ops();

  auto clone = ir::clone_graph(m.g);
  const ir::FusionResult r = ir::fuse_graph(*clone);
  EXPECT_GT(r.gemm_epilogues, 0u);
  EXPECT_GT(r.ops_removed, 0u);
  // ops_removed counts eliminated originals; each pointwise group adds one
  // fused op back.
  EXPECT_EQ(clone->num_ops(), ops_before - r.ops_removed + r.pointwise_groups);

  // The fc1 matmul absorbed bias_add + tanh: three inputs, epilogue set.
  const ir::MatMulOp* fused_mm = nullptr;
  for (const auto& op : clone->ops())
    if (op->type() == OpType::kMatMul &&
        static_cast<const ir::MatMulOp&>(*op).has_epilogue())
      fused_mm = static_cast<const ir::MatMulOp*>(op.get());
  ASSERT_NE(fused_mm, nullptr);
  EXPECT_TRUE(fused_mm->epilogue_bias());
  EXPECT_EQ(fused_mm->epilogue_activation(), PointwiseFn::kTanh);
  EXPECT_EQ(fused_mm->inputs().size(), 3u);

  // FLOPs conserved exactly; traffic strictly reduced; still lint-clean.
  EXPECT_DOUBLE_EQ(clone->total_flops().eval(bind), flops_before);
  EXPECT_LT(clone->total_bytes_accessed().eval(bind), bytes_before);
  EXPECT_EQ(total_error_count(*clone), 0u);
}

/// x -> tanh -> (* u) -> relu: a single-consumer mixed chain that must
/// collapse into one three-instruction program reading {x, u} only.
struct ChainGraph {
  Graph g{"chain"};
  Tensor* x = nullptr;
  Tensor* u = nullptr;

  ChainGraph() {
    const Expr b = Expr::symbol("batch");
    x = g.add_input("x", {b, Expr(8)});
    u = g.add_input("u", {b, Expr(8)});
    ir::relu(g, "r", ir::mul(g, "m", ir::tanh(g, "t", x), u));
  }
};

TEST(Fusion, CollapsesSingleConsumerChainsIntoOneProgram) {
  ChainGraph c;
  const Bindings bind{{"batch", 16}};
  const double bytes_before = c.g.total_bytes_accessed().eval(bind);
  const ir::FusionResult r = ir::fuse_graph(c.g);
  EXPECT_EQ(r.pointwise_groups, 1u);
  EXPECT_EQ(r.ops_removed, 3u);
  EXPECT_EQ(c.g.num_ops(), 1u);

  const ir::FusedPointwiseOp* f = largest_fused(c.g);
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->program().size(), 3u);
  ASSERT_EQ(f->inputs().size(), 2u);
  // Only the surviving tensors are charged: two inputs plus the output.
  const double bytes_after = c.g.total_bytes_accessed().eval(bind);
  const double expect = c.x->bytes().eval(bind) + c.u->bytes().eval(bind) +
                        f->output(0)->bytes().eval(bind);
  EXPECT_DOUBLE_EQ(bytes_after, expect);
  EXPECT_LT(bytes_after, bytes_before);
  // FLOPs conserved: the program re-derivation agrees with the cache.
  EXPECT_TRUE(f->flops().equals(f->derive_flops()));
  EXPECT_EQ(total_error_count(c.g), 0u);
}

TEST(Fusion, GroupsBackwardPointwiseWorkOnBuiltGraphs) {
  TinyMlp m;
  auto clone = ir::clone_graph(m.g);
  const ir::FusionResult r = ir::fuse_graph(*clone);
  // The loss-gradient broadcast feeds a pointwise scale; at minimum that
  // pair collapses.
  EXPECT_GT(r.pointwise_groups, 0u);
  EXPECT_GT(r.ops_removed, r.gemm_epilogues);
  const ir::FusedPointwiseOp* f = largest_fused(*clone);
  ASSERT_NE(f, nullptr);
  EXPECT_GE(f->program().size(), 1u);
  EXPECT_EQ(total_error_count(*clone), 0u);
}

TEST(Fusion, MultiConsumerTensorsAreNotFused) {
  Graph g("shared");
  const Expr b = Expr::symbol("batch");
  Tensor* x = g.add_input("x", {b, Expr(8)});
  Tensor* y = ir::sigmoid(g, "gate", x);  // two consumers: must survive
  Tensor* a = ir::add(g, "sum", y, x);
  Tensor* t = ir::tanh(g, "squash", a);  // fuses with "sum"
  Tensor* r = ir::relu(g, "pass", y);    // singleton: stays unfused
  (void)t;
  (void)r;

  const ir::FusionResult res = ir::fuse_graph(g);
  EXPECT_EQ(res.pointwise_groups, 1u);
  const ir::FusedPointwiseOp* f = largest_fused(g);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->program().size(), 2u);
  // The shared sigmoid and the singleton relu both survive as plain ops.
  std::size_t sigmoid_ops = 0, relu_ops = 0;
  for (const auto& op : g.ops()) {
    if (op->type() != OpType::kPointwise) continue;
    const auto fn = static_cast<const ir::PointwiseOp&>(*op).fn();
    sigmoid_ops += fn == PointwiseFn::kSigmoid;
    relu_ops += fn == PointwiseFn::kRelu;
  }
  EXPECT_EQ(sigmoid_ops, 1u);
  EXPECT_EQ(relu_ops, 1u);
  EXPECT_EQ(total_error_count(g), 0u);
}

TEST(Fusion, AbsorbsBroadcastFeeders) {
  Graph g("bcast");
  const Expr b = Expr::symbol("batch");
  Tensor* x = g.add_input("x", {b, Expr(8)});
  Tensor* gamma = g.add_input("gamma", {Expr(8)});
  Tensor* wide =
      g.add_op<ir::BroadcastOp>("widen", gamma, ir::TensorShape{b, Expr(8)})->output(0);
  Tensor* y = ir::mul(g, "scale", x, wide);
  Tensor* z = ir::tanh(g, "squash", y);
  (void)z;

  const ir::FusionResult r = ir::fuse_graph(g);
  EXPECT_EQ(r.pointwise_groups, 1u);
  EXPECT_EQ(count_ops(g, OpType::kBroadcast), 0u);
  const ir::FusedPointwiseOp* f = largest_fused(g);
  ASSERT_NE(f, nullptr);
  // The fused op reads the broadcast SOURCE directly (modulo addressing).
  bool reads_gamma = false;
  for (const Tensor* in : f->inputs()) reads_gamma |= in == gamma;
  EXPECT_TRUE(reads_gamma);
  EXPECT_EQ(total_error_count(g), 0u);
}

TEST(Fusion, ActivationOnlyEpilogueFolds) {
  Graph g("mm_act");
  const Expr b = Expr::symbol("batch");
  Tensor* x = g.add_input("x", {b, Expr(6)});
  Tensor* w = g.add_weight("w", {Expr(6), Expr(4)});
  Tensor* y = ir::relu(g, "act", ir::matmul(g, "mm", x, w));
  (void)y;

  const ir::FusionResult r = ir::fuse_graph(g);
  EXPECT_EQ(r.gemm_epilogues, 1u);
  const auto& mm = static_cast<const ir::MatMulOp&>(*g.ops().front());
  EXPECT_TRUE(mm.has_epilogue());
  EXPECT_FALSE(mm.epilogue_bias());
  EXPECT_EQ(mm.epilogue_activation(), PointwiseFn::kRelu);
  EXPECT_EQ(mm.inputs().size(), 2u);
  EXPECT_EQ(total_error_count(g), 0u);
}

// --- satellite: pointwise arity validation ---------------------------------

TEST(Fusion, PointwiseArityIsValidatedAtConstruction) {
  Graph g("arity");
  Tensor* x = g.add_input("x", {Expr(4)});
  Tensor* y = g.add_input("y", {Expr(4)});
  EXPECT_THROW(ir::pointwise(g, "addn1", PointwiseFn::kAddN, {x}), std::invalid_argument);
  EXPECT_THROW(ir::pointwise(g, "add1", PointwiseFn::kAdd, {x}), std::invalid_argument);
  EXPECT_THROW(ir::pointwise(g, "sig2", PointwiseFn::kSigmoid, {x, y}),
               std::invalid_argument);
  EXPECT_THROW(ir::pointwise_fn_flops_per_element(PointwiseFn::kAddN, 1),
               std::invalid_argument);
  EXPECT_THROW(ir::pointwise_fn_flops_per_element(PointwiseFn::kMul, 3),
               std::invalid_argument);
  EXPECT_NO_THROW(ir::pointwise(g, "addn", PointwiseFn::kAddN, {x, y}));
}

// --- cost transparency on every built-in model ------------------------------

TEST(Fusion, FlopsConservedBytesReducedSlabNeverLargerOnAllModels) {
  for (ModelCase& c : builtin_models()) {
    const Bindings bind = c.spec.bind(c.hidden, 2);
    const Graph& g = *c.spec.graph;
    auto fused = ir::clone_graph(g);
    const ir::FusionResult r = ir::fuse_graph(*fused);
    EXPECT_GT(r.ops_removed, 0u) << c.name;

    EXPECT_DOUBLE_EQ(fused->total_flops().eval(bind), g.total_flops().eval(bind))
        << c.name;
    EXPECT_LT(fused->total_bytes_accessed().eval(bind), g.total_bytes_accessed().eval(bind))
        << c.name;
    EXPECT_EQ(total_error_count(*fused), 0u) << c.name;

    // Static memory plan: fusing must never cost slab bytes.
    const ir::OpDag dag = ir::build_op_dag(g);
    const ir::OpDag fdag = ir::build_op_dag(*fused);
    const rt::MemoryPlan plan = rt::plan_memory(g, dag, bind);
    const rt::MemoryPlan fplan = rt::plan_memory(*fused, fdag, bind);
    EXPECT_LE(fplan.planned_peak_bytes(), plan.planned_peak_bytes()) << c.name;
  }
}

// --- verify pass: positive + hand-broken negatives --------------------------

TEST(Fusion, VerifyPassCatchesTamperedProgram) {
  ChainGraph c;
  ir::fuse_graph(c.g);
  ASSERT_EQ(fusion_error_count(c.g), 0u);

  ir::FusedPointwiseOp* f = largest_fused(c.g);
  ASSERT_NE(f, nullptr);

  // Append an instruction behind the cached formulas' back: the re-derived
  // FLOP count no longer matches, and the old final result goes unread.
  ir::FusedInstr extra;
  extra.fn = PointwiseFn::kRelu;
  extra.args = {0};
  f->mutable_program().push_back(extra);
  EXPECT_GT(fusion_error_count(c.g), 0u);
  f->mutable_program().pop_back();
  ASSERT_EQ(fusion_error_count(c.g), 0u);

  // Disconnect the group: re-point every operand of the final instruction
  // at external 0, leaving an interior result unread.
  ASSERT_GE(f->program().size(), 2u);
  const std::vector<int> saved = f->program().back().args;
  for (int& a : f->mutable_program().back().args) a = 0;
  EXPECT_GT(fusion_error_count(c.g), 0u);
  f->mutable_program().back().args = saved;
  EXPECT_EQ(fusion_error_count(c.g), 0u);
}

// --- serialization ----------------------------------------------------------

TEST(Fusion, FusedGraphSerializationRoundTrips) {
  TinyMlp m;
  auto fused = ir::clone_graph(m.g);
  const ir::FusionResult r = ir::fuse_graph(*fused);
  ASSERT_GT(r.gemm_epilogues + r.pointwise_groups, 0u);

  const std::string text = ir::serialize(*fused);
  auto loaded = ir::deserialize(text);  // validate=true: lint-clean load
  EXPECT_EQ(ir::serialize(*loaded), text);
  EXPECT_EQ(loaded->num_ops(), fused->num_ops());
  EXPECT_EQ(count_ops(*loaded, OpType::kFusedPointwise),
            count_ops(*fused, OpType::kFusedPointwise));

  const Bindings bind{{"batch", 16}};
  EXPECT_DOUBLE_EQ(loaded->total_flops().eval(bind), fused->total_flops().eval(bind));
  EXPECT_DOUBLE_EQ(loaded->total_bytes_accessed().eval(bind),
                   fused->total_bytes_accessed().eval(bind));

  // The restored MatMul epilogue survives with its bias arity and fn.
  bool saw_epilogue = false;
  for (const auto& op : loaded->ops())
    if (op->type() == OpType::kMatMul &&
        static_cast<const ir::MatMulOp&>(*op).has_epilogue())
      saw_epilogue = true;
  EXPECT_TRUE(saw_epilogue);
}

TEST(Fusion, CloneGraphPreservesTensorIdsAndShapes) {
  TinyMlp m;
  std::unordered_map<const Tensor*, Tensor*> mapping;
  auto clone = ir::clone_graph(m.g, &mapping);
  ASSERT_EQ(clone->tensors().size(), m.g.tensors().size());
  EXPECT_EQ(mapping.size(), m.g.tensors().size());
  for (const auto& [orig, copy] : mapping) {
    EXPECT_EQ(orig->id(), copy->id());
    EXPECT_TRUE(orig->shape().equals(copy->shape()));
    EXPECT_EQ(orig->dtype(), copy->dtype());
  }
  EXPECT_GE(clone->next_tensor_id(), m.g.next_tensor_id());
}

// --- executor integration ---------------------------------------------------

std::uint32_t loss_bits_after_steps(const models::ModelSpec& spec, double hidden,
                                    bool fuse, std::size_t threads, int steps) {
  conc::ThreadPool pool(threads);
  rt::ExecutorOptions opt;
  opt.pool = &pool;
  opt.fuse = fuse;
  rt::Executor ex(*spec.graph, spec.bind(hidden, 2), opt);
  ex.retain(spec.loss);
  for (int i = 0; i < steps; ++i) ex.run_step();
  const float loss = ex.value(spec.loss).f(0);
  std::uint32_t bits = 0;
  std::memcpy(&bits, &loss, sizeof bits);
  return bits;
}

TEST(Fusion, BitwiseEqualToUnfusedOnAllModelsAcrossThreadCounts) {
  for (ModelCase& c : builtin_models()) {
    const std::uint32_t want = loss_bits_after_steps(c.spec, c.hidden, false, 1, 3);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      const std::uint32_t got = loss_bits_after_steps(c.spec, c.hidden, true, threads, 3);
      EXPECT_EQ(got, want) << c.name << " threads=" << threads;
    }
  }
}

TEST(Fusion, ExecutorRemapsSurvivorsAndRejectsEliminatedTensors) {
  TinyMlp m;
  const Bindings bind{{"batch", 4}};
  rt::ExecutorOptions opt;
  opt.fuse = true;
  rt::Executor ex(m.g, bind, opt);
  ASSERT_NE(ex.fusion_result(), nullptr);
  EXPECT_GT(ex.fusion_result()->gemm_epilogues + ex.fusion_result()->pointwise_groups, 0u);
  EXPECT_LT(ex.executing_graph().num_ops(), m.g.num_ops());

  // Surviving caller-facing tensors keep working through the remap.
  ex.retain(m.loss);
  ex.run_step();
  EXPECT_TRUE(std::isfinite(ex.value(m.loss).f(0)));

  // The fc1 GEMM output was folded into the epilogue: addressing it must
  // throw rather than silently hand back the wrong buffer.
  const Tensor* eliminated = nullptr;
  for (const auto& t : m.g.tensors())
    if (t->name() == "fc1:out") eliminated = t.get();
  ASSERT_NE(eliminated, nullptr);
  EXPECT_THROW(ex.retain(eliminated), std::invalid_argument);
  EXPECT_THROW(ex.resolve(eliminated), std::invalid_argument);

  // Same graph, fusion off: identical bits (clone preserves RNG streams).
  rt::Executor plain(m.g, bind);
  plain.retain(m.loss);
  plain.run_step();
  EXPECT_EQ(ex.value(m.loss).f(0), plain.value(m.loss).f(0));
}

}  // namespace
}  // namespace gf

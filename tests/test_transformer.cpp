// Transformer-LM extension tests: structure, asymptotics vs the LSTM word
// LM, quadratic attention term, and numeric execution (the whole pipeline
// must hold for a model family the paper did not ship).
#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/first_order.h"
#include "src/ir/footprint.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"

namespace gf::models {
namespace {

using sym::Bindings;
using sym::Expr;

TEST(TransformerLm, ParameterCountMatchesClosedForm) {
  TransformerLmConfig cfg;
  const ModelSpec spec = build_transformer_lm(cfg);
  const double h = 1024;
  // embedding vh + positions qh + per block (4h^2 attn + 8h^2 ffn + biases
  // + 2 norms) + final norm + output (hv + v).
  const double blocks = cfg.layers * (12.0 * h * h + (4 + 2 * cfg.ffn_multiple) * h +
                                      cfg.ffn_multiple * h + 4.0 * h);
  const double expected = cfg.vocab * h + cfg.seq_length * h + blocks + 2.0 * h +
                          h * cfg.vocab + cfg.vocab;
  EXPECT_NEAR(spec.params_at(h), expected, 0.002 * expected);
}

TEST(TransformerLm, FlopsPerParamApproaches6qLikeRecurrentNets) {
  // Every parameter in the GEMM-dominated blocks is used once per token
  // per pass, so FLOPs/param/sample -> 6q as h grows — the same constant
  // as the LSTM, reached via batched GEMMs instead of a serial unroll.
  const ModelSpec spec = build_transformer_lm();
  const double h = spec.hidden_for_params(3e11);
  const Bindings bind = spec.bind(h, 8);
  const double per_param =
      spec.graph->total_flops().eval(bind) / (8.0 * spec.params_at(h));
  EXPECT_NEAR(per_param, 6.0 * 80, 0.08 * 6.0 * 80);
}

TEST(TransformerLm, AttentionAddsQuadraticSequenceTerm) {
  // At fixed h, doubling q more than doubles FLOPs (the q^2 score matmuls),
  // unlike the strictly-linear LSTM unroll.
  TransformerLmConfig small_cfg;
  small_cfg.vocab = 1000;
  small_cfg.seq_length = 64;
  TransformerLmConfig big_cfg = small_cfg;
  big_cfg.seq_length = 128;
  const ModelSpec small = build_transformer_lm(small_cfg);
  const ModelSpec big = build_transformer_lm(big_cfg);
  const double h = 64;  // small h so the q^2 h term is visible
  const double f_small = small.graph->total_flops().eval(small.bind(h, 4));
  const double f_big = big.graph->total_flops().eval(big.bind(h, 4));
  EXPECT_GT(f_big, 2.05 * f_small);

  WordLmConfig lm_small{.vocab = 1000, .layers = 1, .seq_length = 64};
  WordLmConfig lm_big{.vocab = 1000, .layers = 1, .seq_length = 128};
  const ModelSpec rnn_small = build_word_lm(lm_small);
  const ModelSpec rnn_big = build_word_lm(lm_big);
  const double r_small = rnn_small.graph->total_flops().eval(rnn_small.bind(h, 4));
  const double r_big = rnn_big.graph->total_flops().eval(rnn_big.bind(h, 4));
  EXPECT_NEAR(r_big / r_small, 2.0, 0.1);  // the RNN stays linear in q
}

TEST(TransformerLm, HigherOperationalIntensityThanLstmAtSameSize) {
  // The headline hardware consequence: attention re-reads weights once per
  // *sequence* (batched GEMM over B*q rows) instead of once per *timestep*
  // (GEMM over B rows), so the weight-streaming lambda term shrinks and
  // graph-level intensity rises at equal parameters and subbatch.
  const ModelSpec trans = build_transformer_lm();
  const ModelSpec lstm = build_word_lm();
  const double p = 2e9, b = 32;
  const auto oi = [&](const ModelSpec& spec) {
    const Bindings bind = spec.bind(spec.hidden_for_params(p), b);
    return spec.graph->total_flops().eval(bind) /
           spec.graph->total_bytes_accessed().eval(bind);
  };
  EXPECT_GT(oi(trans), 2.0 * oi(lstm));
}

TEST(TransformerLm, ValidatesAndFitsFirstOrderModel) {
  const ModelSpec spec = build_transformer_lm();
  EXPECT_NO_THROW(spec.graph->validate());
  const analysis::ModelAnalyzer analyzer(spec);
  analysis::FitOptions opt;
  opt.min_params = 5e10;
  opt.max_params = 1e12;
  const auto fit = analysis::fit_first_order(analyzer, opt);
  EXPECT_GT(fit.gamma, 0);
  EXPECT_GT(fit.lambda, 0);
  EXPECT_GT(fit.mu, 0);
  EXPECT_GT(fit.r2_flops, 0.99);
}

TEST(TransformerLm, ToyInstanceExecutesAndMatchesSymbolic) {
  TransformerLmConfig cfg;
  cfg.vocab = 40;
  cfg.layers = 2;
  cfg.seq_length = 6;
  const ModelSpec spec = build_transformer_lm(cfg);
  const Bindings bind = spec.bind(8, 2);
  rt::Executor ex(*spec.graph, bind);
  ex.run_step();
  const auto report = ex.run_step();
  const double sym_flops = spec.graph->total_flops().eval(bind);
  EXPECT_NEAR(report.total_flops, sym_flops, 1e-6 * sym_flops);
  const auto fp = ir::minimal_footprint(*spec.graph, bind);
  if (const rt::MemoryPlan* plan = ex.memory_plan()) {
    // Planned mode (GF_MEMORY_PLAN=1): peak equals the plan, slab within
    // alignment padding of the analytic sequential footprint.
    EXPECT_EQ(report.peak_allocated_bytes, plan->planned_peak_bytes());
    EXPECT_LE(static_cast<double>(plan->planned_peak_bytes()),
              fp.total_bytes +
                  static_cast<double>(rt::kTensorAlignment * plan->tensors.size()));
  } else {
    EXPECT_DOUBLE_EQ(static_cast<double>(report.peak_allocated_bytes), fp.total_bytes);
  }
}

TEST(TransformerLm, ToyInstanceTrains) {
  TransformerLmConfig cfg;
  cfg.vocab = 30;
  cfg.layers = 1;
  cfg.seq_length = 4;
  const ModelSpec spec = build_transformer_lm(cfg);
  rt::ExecutorOptions opt;
  opt.learning_rate = 0.2;
  rt::Executor ex(*spec.graph, spec.bind(12, 4), opt);
  ex.retain(spec.loss);
  ex.run_step();
  const float first = ex.value(spec.loss).f(0);
  for (int i = 0; i < 40; ++i) ex.run_step();
  EXPECT_LT(ex.value(spec.loss).f(0), first);
}

TEST(TransformerLm, RejectsBadConfigs) {
  TransformerLmConfig cfg;
  cfg.layers = 0;
  EXPECT_THROW(build_transformer_lm(cfg), std::invalid_argument);
  cfg = {};
  cfg.ffn_multiple = 0;
  EXPECT_THROW(build_transformer_lm(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace gf::models

// Cross-cutting property tests: invariants that must hold across every
// domain, size, and subbatch — the "laws" the paper's analysis relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "src/hw/cache_model.h"
#include "src/hw/subbatch.h"
#include "src/ir/footprint.h"
#include "src/ir/serialize.h"
#include "src/models/models.h"

namespace gf {
namespace {

class DomainProperty : public ::testing::TestWithParam<int> {
 protected:
  models::ModelSpec build_small() {
    // Toy configs: properties are structural, not scale-dependent.
    switch (GetParam()) {
      case 0:
        return models::build_word_lm({.vocab = 80, .layers = 2, .seq_length = 5});
      case 1:
        return models::build_char_lm({.vocab = 30, .depth = 3, .seq_length = 4});
      case 2:
        return models::build_nmt({.vocab_src = 50,
                                  .vocab_tgt = 50,
                                  .src_length = 4,
                                  .tgt_length = 3,
                                  .decoder_layers = 1});
      case 3: {
        models::SpeechConfig cfg;
        cfg.audio_frames = 8;
        cfg.feature_dim = 6;
        cfg.encoder_layers = 2;
        cfg.decoder_length = 3;
        cfg.vocab = 12;
        return models::build_speech(cfg);
      }
      case 4:
        return models::build_resnet({.depth = 18, .image_size = 32, .classes = 10});
      default:
        return models::build_transformer_lm({.vocab = 40, .layers = 2, .seq_length = 4});
    }
  }
};

TEST_P(DomainProperty, FlopsAndBytesMonotoneInHiddenAndBatch) {
  const auto spec = build_small();
  const auto flops = spec.graph->total_flops();
  const auto bytes = spec.graph->total_bytes_accessed();
  double prev_f = 0, prev_b = 0;
  for (double h : {8.0, 16.0, 32.0, 64.0}) {
    const double f = flops.eval(spec.bind(h, 4));
    const double b = bytes.eval(spec.bind(h, 4));
    EXPECT_GT(f, prev_f) << spec.name;
    EXPECT_GT(b, prev_b) << spec.name;
    prev_f = f;
    prev_b = b;
  }
  prev_f = prev_b = 0;
  for (double batch : {1.0, 2.0, 8.0, 32.0}) {
    const double f = flops.eval(spec.bind(16, batch));
    const double b = bytes.eval(spec.bind(16, batch));
    EXPECT_GT(f, prev_f) << spec.name;
    EXPECT_GT(b, prev_b) << spec.name;
    prev_f = f;
    prev_b = b;
  }
}

TEST_P(DomainProperty, FootprintMonotoneAndBounded) {
  const auto spec = build_small();
  double prev = 0;
  for (double h : {8.0, 16.0, 32.0}) {
    const auto fp = ir::minimal_footprint(*spec.graph, spec.bind(h, 4));
    EXPECT_GT(fp.total_bytes, prev) << spec.name;
    prev = fp.total_bytes;
    // Persistent floor: weights + gradients at 4 bytes each (SGD).
    EXPECT_GE(fp.persistent_bytes, 8.0 * spec.params_at(h) - 1) << spec.name;
    // Transient peak at least the largest single tensor.
    double largest = 0;
    for (const auto& t : spec.graph->tensors())
      if (!t->is_persistent())
        largest = std::max(largest, t->bytes().eval(spec.bind(h, 4)));
    EXPECT_GE(fp.peak_transient_bytes, largest) << spec.name;
  }
}

TEST_P(DomainProperty, CacheAwareNeverFasterThanRoofline) {
  const auto spec = build_small();
  const auto accel = hw::AcceleratorConfig::v100_like();
  for (double h : {16.0, 64.0}) {
    const auto bind = spec.bind(h, 8);
    const auto best = hw::best_case_step_time(*spec.graph, bind, accel);
    const auto cache = hw::cache_aware_step_time(*spec.graph, bind, accel);
    EXPECT_GE(cache.step_seconds, best.seconds() * (1 - 1e-9)) << spec.name;
    EXPECT_LE(cache.flop_utilization, best.flop_utilization + 1e-9) << spec.name;
    EXPECT_GE(cache.restream_factor(), 1.0 - 1e-9) << spec.name;
  }
}

TEST_P(DomainProperty, SerializedGraphEvaluatesIdentically) {
  const auto spec = build_small();
  const auto loaded = ir::deserialize(ir::serialize(*spec.graph));
  for (double h : {8.0, 24.0}) {
    for (double b : {2.0, 16.0}) {
      const auto bind = spec.bind(h, b);
      EXPECT_DOUBLE_EQ(loaded->total_flops().eval(bind),
                       spec.graph->total_flops().eval(bind))
          << spec.name;
      EXPECT_DOUBLE_EQ(loaded->algorithmic_io().eval(bind),
                       spec.graph->algorithmic_io().eval(bind))
          << spec.name;
    }
  }
}

TEST_P(DomainProperty, GradientOpsOutnumberForwardMatmulFlops) {
  // Backward matrix work is ~2x forward for every family (paper §2.1).
  const auto spec = build_small();
  const auto bind = spec.bind(16, 4);
  double fwd = 0, bwd = 0;
  for (const auto& op : spec.graph->ops()) {
    const bool is_matrix = op->type() == ir::OpType::kMatMul ||
                           op->type() == ir::OpType::kConv2D ||
                           op->type() == ir::OpType::kConv2DGradInput ||
                           op->type() == ir::OpType::kConv2DGradFilter;
    if (!is_matrix) continue;
    // Gradient matmuls are named "<fwd>:dA" / "<fwd>:dB" by build_backward.
    const bool is_grad = op->name().find(":dA") != std::string::npos ||
                         op->name().find(":dB") != std::string::npos ||
                         op->type() == ir::OpType::kConv2DGradInput ||
                         op->type() == ir::OpType::kConv2DGradFilter;
    (is_grad ? bwd : fwd) += op->flops().eval(bind);
  }
  EXPECT_NEAR(bwd / fwd, 2.0, 0.35) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DomainProperty, ::testing::Range(0, 6));

// --- hardware-model properties over parameter sweeps -----------------------

class RooflineProperty : public ::testing::TestWithParam<double> {};

TEST_P(RooflineProperty, ContinuousAndMonotone) {
  const auto accel = hw::AcceleratorConfig::v100_like();
  const double bytes = GetParam();
  // Crossing the ridge point from below: time continuous, utilization
  // increases up to the 80% cap and stays there.
  double prev_time = 0, prev_util = 0;
  for (double intensity = 1; intensity <= 256; intensity *= 2) {
    const auto t = hw::roofline_step_time(accel, intensity * bytes, bytes);
    EXPECT_GE(t.seconds(), prev_time * (1 - 1e-12));
    EXPECT_GE(t.flop_utilization, prev_util - 1e-12);
    prev_time = t.seconds();
    prev_util = t.flop_utilization;
  }
  EXPECT_NEAR(prev_util, 0.80, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, RooflineProperty,
                         ::testing::Values(1e9, 1e12, 5e13));

class SubbatchProperty : public ::testing::TestWithParam<int> {};

TEST_P(SubbatchProperty, InvariantsHoldAcrossDomainsAndSizes) {
  const auto domain = static_cast<models::Domain>(GetParam());
  const auto model = analysis::paper_first_order(domain);
  const auto accel = hw::AcceleratorConfig::v100_like();
  for (double params : {5e8, 5e9, 5e10}) {
    const auto choice = hw::choose_subbatch(model, params, accel);
    // Ordering: ridge <= best <= saturation (for RNN-like mu/lambda).
    EXPECT_LE(choice.ridge, choice.best * (1 + 1e-9));
    EXPECT_LE(choice.best, choice.saturation * (1 + 1e-9));
    // Larger models shift the ridge-match subbatch down or equal (they
    // stream more weight bytes per sample).
    const auto pt = hw::evaluate_subbatch(model, params, choice.best, accel);
    EXPECT_GT(pt.op_intensity, accel.achievable_ridge_point() * 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, SubbatchProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace gf

// Unit tests for op shape inference, algorithmic FLOPs, and bytes accessed.
#include <gtest/gtest.h>

#include "src/ir/footprint.h"
#include "src/ir/graph.h"
#include "src/ir/ops.h"

namespace gf::ir {
namespace {

using sym::Bindings;
using sym::Expr;

TEST(MatMulOp, ShapeAndFlops) {
  Graph g("t");
  Tensor* a = g.add_input("a", {Expr::symbol("m"), Expr::symbol("k")});
  Tensor* b = g.add_weight("b", {Expr::symbol("k"), Expr::symbol("n")});
  Tensor* y = matmul(g, "mm", a, b);
  EXPECT_EQ(y->shape().str(), "(m, n)");
  const Bindings bind{{"m", 8}, {"k", 16}, {"n", 32}};
  EXPECT_DOUBLE_EQ(g.ops()[0]->flops().eval(bind), 2.0 * 8 * 16 * 32);
  // Default bytes: all inputs read + outputs written, 4B floats.
  EXPECT_DOUBLE_EQ(g.ops()[0]->bytes_accessed().eval(bind),
                   4.0 * (8 * 16 + 16 * 32 + 8 * 32));
}

TEST(MatMulOp, TransposeFlagsChangeContraction) {
  Graph g("t");
  Tensor* a = g.add_input("a", {Expr(16), Expr(8)});   // A^T is (8, 16)
  Tensor* b = g.add_input("b", {Expr(32), Expr(16)});  // B^T is (16, 32)
  Tensor* y = matmul(g, "mm", a, b, /*trans_a=*/true, /*trans_b=*/true);
  EXPECT_EQ(y->shape().str(), "(8, 32)");
  EXPECT_DOUBLE_EQ(g.ops()[0]->flops().eval({}), 2.0 * 8 * 16 * 32);
}

TEST(MatMulOp, BatchedSharedWeights) {
  Graph g("t");
  Tensor* a = g.add_input("a", {Expr::symbol("b0"), Expr(10), Expr(20)});
  Tensor* w = g.add_weight("w", {Expr(20), Expr(30)});
  Tensor* y = matmul(g, "mm", a, w);
  EXPECT_EQ(y->shape().str(), "(b0, 10, 30)");
  EXPECT_DOUBLE_EQ(g.ops()[0]->flops().eval({{"b0", 4}}), 2.0 * 4 * 10 * 20 * 30);
}

TEST(MatMulOp, RejectsInnerDimMismatch) {
  Graph g("t");
  Tensor* a = g.add_input("a", {Expr(4), Expr(5)});
  Tensor* b = g.add_input("b", {Expr(6), Expr(7)});
  EXPECT_THROW(matmul(g, "mm", a, b), std::invalid_argument);
}

TEST(MatMulOp, RejectsRank2TimesRank3) {
  Graph g("t");
  Tensor* a = g.add_input("a", {Expr(4), Expr(5)});
  Tensor* b = g.add_input("b", {Expr(2), Expr(5), Expr(7)});
  EXPECT_THROW(matmul(g, "mm", a, b), std::invalid_argument);
}

TEST(Conv2DOp, ShapeAndFlops) {
  Graph g("t");
  Tensor* x = g.add_input("x", {Expr::symbol("n"), Expr(32), Expr(32), Expr(3)});
  Tensor* f = g.add_weight("f", {Expr(3), Expr(3), Expr(3), Expr(64)});
  Tensor* y = conv2d(g, "conv", x, f, /*stride=*/2);
  EXPECT_EQ(y->shape().str(), "(n, 16, 16, 64)");
  // 2 * N*Ho*Wo*Cout * Kh*Kw*Cin
  EXPECT_DOUBLE_EQ(g.ops()[0]->flops().eval({{"n", 2}}),
                   2.0 * 2 * 16 * 16 * 64 * 3 * 3 * 3);
}

TEST(Conv2DOp, RejectsChannelMismatch) {
  Graph g("t");
  Tensor* x = g.add_input("x", {Expr(1), Expr(8), Expr(8), Expr(4)});
  Tensor* f = g.add_weight("f", {Expr(3), Expr(3), Expr(5), Expr(8)});
  EXPECT_THROW(conv2d(g, "conv", x, f), std::invalid_argument);
}

TEST(PointwiseOp, FlopsPerFunction) {
  Graph g("t");
  Tensor* x = g.add_input("x", {Expr(10), Expr(10)});
  Tensor* y = g.add_input("y", {Expr(10), Expr(10)});
  add(g, "a", x, y);
  sigmoid(g, "s", x);
  tanh(g, "t", x);
  add_n(g, "n", {x, y, x});
  EXPECT_DOUBLE_EQ(g.ops()[0]->flops().eval({}), 100.0);
  EXPECT_DOUBLE_EQ(g.ops()[1]->flops().eval({}), 400.0);
  EXPECT_DOUBLE_EQ(g.ops()[2]->flops().eval({}), 600.0);
  EXPECT_DOUBLE_EQ(g.ops()[3]->flops().eval({}), 200.0);  // (3-1) per element
}

TEST(PointwiseOp, RejectsShapeMismatch) {
  Graph g("t");
  Tensor* x = g.add_input("x", {Expr(10)});
  Tensor* y = g.add_input("y", {Expr(11)});
  EXPECT_THROW(add(g, "a", x, y), std::invalid_argument);
}

TEST(EmbeddingLookupOp, BytesTouchOnlyGatheredRows) {
  Graph g("t");
  const Expr v = Expr::symbol("v"), e = Expr::symbol("e"), b = Expr::symbol("b");
  Tensor* table = g.add_weight("table", {v, e});
  Tensor* ids = g.add_input("ids", {b, Expr(20)}, DataType::kInt32);
  Tensor* out = embedding_lookup(g, "emb", table, ids);
  EXPECT_EQ(out->shape().str(), "(b, 20, e)");
  EXPECT_DOUBLE_EQ(g.ops()[0]->flops().eval({}), 0.0);
  const Bindings bind{{"v", 1e6}, {"e", 512}, {"b", 8}};
  // 2 * gathered bytes + ids bytes; the 1M-row table is NOT streamed.
  EXPECT_DOUBLE_EQ(g.ops()[0]->bytes_accessed().eval(bind),
                   2.0 * 8 * 20 * 512 * 4 + 8 * 20 * 4);
}

TEST(SoftmaxXentOp, ShapesAndFlops) {
  Graph g("t");
  Tensor* logits = g.add_input("l", {Expr(8), Expr::symbol("c")});
  Tensor* labels = g.add_input("y", {Expr(8)}, DataType::kInt32);
  auto [loss, probs] = softmax_xent(g, "xent", logits, labels);
  EXPECT_EQ(loss->shape().str(), "(8)");
  EXPECT_EQ(probs->shape().str(), "(8, c)");
  EXPECT_DOUBLE_EQ(g.ops()[0]->flops().eval({{"c", 100}}), 6.0 * 800);
}

TEST(ReduceOp, MeanToScalar) {
  Graph g("t");
  Tensor* x = g.add_input("x", {Expr(8), Expr(4)});
  Tensor* m = reduce_mean(g, "m", x);
  EXPECT_EQ(m->shape().rank(), 0u);
  EXPECT_DOUBLE_EQ(m->num_elements().eval({}), 1.0);
  EXPECT_DOUBLE_EQ(g.ops()[0]->flops().eval({}), 32.0 + 1.0);
}

TEST(ReduceOp, KeepLastAxis) {
  Graph g("t");
  Tensor* x = g.add_input("x", {Expr(8), Expr(4), Expr(6)});
  Tensor* s = reduce_sum(g, "s", x, /*keep_last_n=*/1);
  EXPECT_EQ(s->shape().str(), "(6)");
}

TEST(PoolOp, HalvesSpatialDims) {
  Graph g("t");
  Tensor* x = g.add_input("x", {Expr(2), Expr(16), Expr(16), Expr::symbol("c")});
  Tensor* y = pool(g, "p", x, PoolKind::kMax, 2, 2);
  EXPECT_EQ(y->shape().str(), "(2, 8, 8, c)");
  EXPECT_DOUBLE_EQ(g.ops()[0]->flops().eval({{"c", 3}}), 2.0 * 16 * 16 * 3);
}

TEST(ConcatSplit, RoundTripShapes) {
  Graph g("t");
  Tensor* a = g.add_input("a", {Expr(4), Expr::symbol("h")});
  Tensor* b = g.add_input("b", {Expr(4), Expr::symbol("e")});
  Tensor* c = concat(g, "c", {a, b}, 1);
  EXPECT_EQ(c->shape().str(), "(4, e + h)");

  Tensor* z = g.add_input("z", {Expr(4), Expr(4) * Expr::symbol("h")});
  auto parts = split(g, "s", z, 1, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0]->shape().str(), "(4, h)");
}

TEST(ConcatOp, RejectsMismatchedNonAxisDims) {
  Graph g("t");
  Tensor* a = g.add_input("a", {Expr(4), Expr(8)});
  Tensor* b = g.add_input("b", {Expr(5), Expr(8)});
  EXPECT_THROW(concat(g, "c", {a, b}, 1), std::invalid_argument);
}

TEST(ReshapeOp, PreservesElementsAndIsFree) {
  Graph g("t");
  const Expr b = Expr::symbol("b"), q = Expr(20), e = Expr::symbol("e");
  Tensor* x = g.add_input("x", {b, q, e});
  Tensor* y = reshape(g, "r", x, TensorShape{b * q, e});
  EXPECT_TRUE(y->num_elements().equals(x->num_elements()));
  EXPECT_DOUBLE_EQ(g.ops()[0]->flops().eval({}), 0.0);
  EXPECT_DOUBLE_EQ(g.ops()[0]->bytes_accessed().eval({}), 0.0);
}

TEST(ReshapeOp, RejectsElementCountChange) {
  Graph g("t");
  Tensor* x = g.add_input("x", {Expr(4), Expr(4)});
  EXPECT_THROW(reshape(g, "r", x, TensorShape{Expr(5), Expr(5)}), std::invalid_argument);
}

TEST(ApplyGradientOp, OptimizerSlotsAndCosts) {
  Graph g("t");
  Tensor* w = g.add_weight("w", {Expr(100)});
  Tensor* gw = g.add_input("gw", {Expr(100)});
  auto* sgd = g.add_op<ApplyGradientOp>("sgd", w, gw, Optimizer::kSGD);
  EXPECT_EQ(sgd->num_slots(), 0u);
  EXPECT_DOUBLE_EQ(sgd->flops().eval({}), 200.0);
  EXPECT_DOUBLE_EQ(sgd->bytes_accessed().eval({}), 4.0 * (2 * 100 + 100));

  Graph g2("t2");
  Tensor* w2 = g2.add_weight("w", {Expr(100)});
  Tensor* gw2 = g2.add_input("gw", {Expr(100)});
  auto* adam = g2.add_op<ApplyGradientOp>("adam", w2, gw2, Optimizer::kAdam);
  EXPECT_EQ(adam->num_slots(), 2u);
  EXPECT_DOUBLE_EQ(adam->flops().eval({}), 1000.0);
}

TEST(Graph, AggregatesAndParameterCount) {
  Graph g("t");
  const Expr h = Expr::symbol("h");
  Tensor* x = g.add_input("x", {Expr(8), h});
  Tensor* w1 = g.add_weight("w1", {h, h});
  Tensor* w2 = g.add_weight("w2", {h, h});
  Tensor* y1 = matmul(g, "m1", x, w1);
  matmul(g, "m2", y1, w2);
  EXPECT_TRUE(g.parameter_count().equals(Expr(2) * h * h));
  EXPECT_DOUBLE_EQ(g.total_flops().eval({{"h", 64}}), 2.0 * 2 * 8 * 64 * 64);
  g.validate();
}

TEST(Graph, TopologicalOrderRespectsDependencies) {
  Graph g("t");
  Tensor* x = g.add_input("x", {Expr(4), Expr(4)});
  Tensor* w = g.add_weight("w", {Expr(4), Expr(4)});
  Tensor* a = matmul(g, "a", x, w);
  Tensor* b = relu(g, "b", a);
  matmul(g, "c", b, w);
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0]->name(), "a");
  EXPECT_EQ(order[1]->name(), "b");
  EXPECT_EQ(order[2]->name(), "c");
}

TEST(Graph, ValidateAcceptsWellFormedTrainingishGraph) {
  Graph g("t");
  Tensor* x = g.add_input("x", {Expr(2), Expr(3)});
  Tensor* w = g.add_weight("w", {Expr(3), Expr(5)});
  Tensor* labels = g.add_input("y", {Expr(2)}, DataType::kInt32);
  auto [loss, probs] = softmax_xent(g, "xent", matmul(g, "mm", x, w), labels);
  (void)loss;
  (void)probs;
  EXPECT_NO_THROW(g.validate());
}

}  // namespace
}  // namespace gf::ir

// Footprint-timeline and hierarchical-allreduce tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/ir/footprint.h"
#include "src/models/models.h"
#include "src/plan/allreduce.h"

namespace gf {
namespace {

TEST(FootprintTimeline, MaximumEqualsMinimalFootprint) {
  const auto spec = models::build_word_lm({.vocab = 50, .layers = 2, .seq_length = 5});
  const auto bind = spec.bind(16, 4);
  const auto timeline = ir::footprint_timeline(*spec.graph, bind);
  ASSERT_EQ(timeline.size(), spec.graph->num_ops());
  const auto peak = std::max_element(
      timeline.begin(), timeline.end(),
      [](const auto& a, const auto& b) { return a.live_bytes < b.live_bytes; });
  const auto fp = ir::minimal_footprint(*spec.graph, bind);
  EXPECT_DOUBLE_EQ(peak->live_bytes, fp.total_bytes);
  EXPECT_EQ(peak->op_index, fp.peak_op_index);
}

TEST(FootprintTimeline, RisesThroughForwardFallsThroughBackward) {
  const auto spec = models::build_char_lm({.vocab = 20, .depth = 3, .seq_length = 6});
  const auto timeline = ir::footprint_timeline(*spec.graph, spec.bind(16, 4));
  std::size_t peak_at = 0;
  for (std::size_t i = 0; i < timeline.size(); ++i)
    if (timeline[i].live_bytes > timeline[peak_at].live_bytes) peak_at = i;
  // The peak sits strictly inside the step and the step ends well below it
  // (activations freed; only persistent + stragglers remain).
  EXPECT_GT(peak_at, 0u);
  EXPECT_LT(peak_at, timeline.size() - 1);
  EXPECT_LT(timeline.back().live_bytes, 0.8 * timeline[peak_at].live_bytes);
  // Never below the persistent floor.
  const auto fp = ir::minimal_footprint(*spec.graph, spec.bind(16, 4));
  for (const auto& pt : timeline) EXPECT_GE(pt.live_bytes, fp.persistent_bytes);
}

TEST(HierarchicalAllReduce, SingleNodeFallsBackToFastRing) {
  plan::HierarchicalAllReduceModel m;
  m.hop_latency = 0;
  const double bytes = 1e9;
  const double t = plan::hierarchical_allreduce_seconds(m, bytes, 8);
  plan::AllReduceModel flat;
  flat.link_bandwidth = m.intra_bandwidth;
  flat.hop_latency = 0;
  EXPECT_DOUBLE_EQ(t, plan::ring_allreduce_seconds(flat, bytes, 8));
}

TEST(HierarchicalAllReduce, BeatsFlatRingOnSlowFabric) {
  plan::HierarchicalAllReduceModel hier;  // 300 GB/s intra, 56 GB/s inter
  plan::AllReduceModel flat;              // 56 GB/s everywhere
  const double bytes = 95.2e9;
  for (int workers : {64, 512, 4096}) {
    EXPECT_LT(plan::hierarchical_allreduce_seconds(hier, bytes, workers),
              plan::ring_allreduce_seconds(flat, bytes, workers))
        << workers;
  }
}

TEST(HierarchicalAllReduce, ApproachesShardedFabricBound) {
  // Large worker count, zero latency: cost -> intra(2B/300) + inter(2*(B/8)/56).
  plan::HierarchicalAllReduceModel m;
  m.hop_latency = 0;
  const double bytes = 80e9;
  const double t = plan::hierarchical_allreduce_seconds(m, bytes, 1 << 16);
  const double k = m.workers_per_node;
  const double bound = 2.0 * (k - 1) / k * bytes / m.intra_bandwidth +
                       2.0 * (bytes / k) / m.inter_bandwidth;
  EXPECT_NEAR(t, bound, 0.01 * bound);
}

TEST(HierarchicalAllReduce, RejectsBadModel) {
  plan::HierarchicalAllReduceModel m;
  m.workers_per_node = 0;
  EXPECT_THROW(plan::hierarchical_allreduce_seconds(m, 1e6, 16), std::invalid_argument);
  m = {};
  EXPECT_THROW(plan::hierarchical_allreduce_seconds(m, -1, 16), std::invalid_argument);
  EXPECT_DOUBLE_EQ(plan::hierarchical_allreduce_seconds({}, 1e9, 1), 0.0);
}

}  // namespace
}  // namespace gf

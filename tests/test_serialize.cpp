// Serialization tests: s-expression codec round trips, graph save/load
// preserves every analytic quantity for all model families, DOT export.
#include <gtest/gtest.h>

#include <random>

#include "src/ir/footprint.h"
#include "src/ir/fusion.h"
#include "src/ir/hash.h"
#include "src/ir/ops.h"
#include "src/ir/serialize.h"
#include "src/models/models.h"
#include "src/symbolic/sexpr.h"

namespace gf {
namespace {

using sym::Expr;

TEST(Sexpr, RoundTripsBasicForms) {
  const Expr h = Expr::symbol("hidden");
  const Expr b = Expr::symbol("batch");
  for (const Expr& e :
       {Expr(42.0), Expr(-1.5), h, b * h, Expr(16) * h * h + Expr(2) * h,
        sym::sqrt(h), sym::pow(h, sym::Rational(3, 2)), sym::max(h, b * Expr(4)),
        sym::log(h), h / b, Expr(0.25) * h}) {
    const Expr back = sym::parse_sexpr(sym::to_sexpr(e));
    EXPECT_TRUE(back.equals(e)) << sym::to_sexpr(e) << " vs " << sym::to_sexpr(back);
  }
}

TEST(Sexpr, RoundTripsRandomExpressions) {
  std::mt19937 rng(7);
  const Expr syms[3] = {Expr::symbol("a"), Expr::symbol("b"), Expr::symbol("c")};
  auto gen = [&](auto&& self, int depth) -> Expr {
    if (depth == 0 || rng() % 4 == 0)
      return rng() % 2 ? syms[rng() % 3] : Expr(static_cast<double>(rng() % 9) - 4);
    switch (rng() % 4) {
      case 0: return self(self, depth - 1) + self(self, depth - 1);
      case 1: return self(self, depth - 1) * self(self, depth - 1);
      case 2: return sym::max(self(self, depth - 1), self(self, depth - 1));
      default: return sym::pow(self(self, depth - 1), sym::Rational(1, 2));
    }
  };
  for (int i = 0; i < 50; ++i) {
    const Expr e = gen(gen, 4);
    EXPECT_TRUE(sym::parse_sexpr(sym::to_sexpr(e)).equals(e));
  }
}

TEST(Sexpr, ExactDoubleRoundTrip) {
  const double v = 0.1 + 0.2;  // not exactly representable in decimal
  const Expr back = sym::parse_sexpr(sym::to_sexpr(Expr(v)));
  EXPECT_EQ(back.constant_value(), v);  // bitwise equal via %.17g
}

TEST(Sexpr, RejectsMalformedInput) {
  EXPECT_THROW(sym::parse_sexpr(""), std::invalid_argument);
  EXPECT_THROW(sym::parse_sexpr("(+ 1"), std::invalid_argument);
  EXPECT_THROW(sym::parse_sexpr("(bogus 1 2)"), std::invalid_argument);
  EXPECT_THROW(sym::parse_sexpr("(log 1 2)"), std::invalid_argument);
  EXPECT_THROW(sym::parse_sexpr("1 2"), std::invalid_argument);
  EXPECT_THROW(sym::parse_sexpr("(^ x 1)"), std::invalid_argument);  // needs den
  EXPECT_THROW(sym::parse_sexpr("na-me"), std::invalid_argument);
}

class GraphRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  models::ModelSpec build() {
    switch (GetParam()) {
      case 0:
        return models::build_word_lm({.vocab = 60, .layers = 2, .seq_length = 5});
      case 1:
        return models::build_char_lm({.vocab = 20, .depth = 3, .seq_length = 4});
      case 2:
        return models::build_nmt({.vocab_src = 40,
                                  .vocab_tgt = 40,
                                  .src_length = 4,
                                  .tgt_length = 3,
                                  .decoder_layers = 1});
      case 3: {
        models::SpeechConfig cfg;
        cfg.audio_frames = 8;
        cfg.feature_dim = 5;
        cfg.encoder_layers = 2;
        cfg.decoder_length = 3;
        cfg.vocab = 15;
        return models::build_speech(cfg);
      }
      case 4:
        return models::build_resnet({.depth = 18, .image_size = 32, .classes = 10});
      default:
        return models::build_transformer_lm(
            {.vocab = 40, .layers = 2, .seq_length = 5});
    }
  }
};

TEST_P(GraphRoundTrip, PreservesAllAnalyticQuantities) {
  const auto spec = build();
  const std::string text = ir::serialize(*spec.graph);
  const auto loaded = ir::deserialize(text);

  EXPECT_EQ(loaded->num_ops(), spec.graph->num_ops());
  EXPECT_EQ(loaded->name(), spec.graph->name());
  EXPECT_TRUE(loaded->parameter_count().equals(spec.graph->parameter_count()));
  EXPECT_TRUE(loaded->total_flops().equals(spec.graph->total_flops()));
  EXPECT_TRUE(loaded->total_bytes_accessed().equals(spec.graph->total_bytes_accessed()));

  const auto bind = spec.bind(8, 2);
  const auto fp_a = ir::minimal_footprint(*spec.graph, bind);
  const auto fp_b = ir::minimal_footprint(*loaded, bind);
  EXPECT_DOUBLE_EQ(fp_a.total_bytes, fp_b.total_bytes);
  EXPECT_DOUBLE_EQ(fp_a.persistent_bytes, fp_b.persistent_bytes);

  // Second-generation round trip is byte-identical (canonical form).
  EXPECT_EQ(ir::serialize(*loaded), text);
}

// Fused graphs must survive save/load too (gfctl lint --file on a fused
// export): the rewrite adds FusedPointwiseOp programs and MatMul epilogue
// attrs, and both must round trip to the same canonical text.
TEST_P(GraphRoundTrip, PreservesAnalyticQuantitiesAfterFusion) {
  const auto spec = build();
  const ir::FusionResult r = ir::fuse_graph(*spec.graph);
  ASSERT_GT(r.pointwise_groups + r.gemm_epilogues, 0u);

  const std::string text = ir::serialize(*spec.graph);
  const auto loaded = ir::deserialize(text);
  EXPECT_EQ(loaded->num_ops(), spec.graph->num_ops());
  EXPECT_TRUE(loaded->total_flops().equals(spec.graph->total_flops()));
  EXPECT_TRUE(loaded->total_bytes_accessed().equals(spec.graph->total_bytes_accessed()));

  const auto bind = spec.bind(8, 2);
  EXPECT_DOUBLE_EQ(ir::minimal_footprint(*loaded, bind).total_bytes,
                   ir::minimal_footprint(*spec.graph, bind).total_bytes);
  EXPECT_EQ(ir::serialize(*loaded), text);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GraphRoundTrip, ::testing::Range(0, 6));

TEST(GraphSerialize, MomentumSlotsSurviveRoundTrip) {
  models::WordLmConfig cfg{.vocab = 50, .layers = 1, .seq_length = 3};
  cfg.training.optimizer = ir::Optimizer::kMomentum;
  const auto spec = models::build_word_lm(cfg);
  const auto loaded = ir::deserialize(ir::serialize(*spec.graph));
  const auto bind = spec.bind(8, 2);
  EXPECT_DOUBLE_EQ(ir::minimal_footprint(*loaded, bind).persistent_bytes,
                   ir::minimal_footprint(*spec.graph, bind).persistent_bytes);
}

TEST(GraphSerialize, HalfPrecisionDtypeSurvives) {
  models::CharLmConfig cfg{.vocab = 20, .depth = 2, .seq_length = 3};
  cfg.training.half_precision = true;
  const auto spec = models::build_char_lm(cfg);
  const auto loaded = ir::deserialize(ir::serialize(*spec.graph));
  EXPECT_TRUE(
      loaded->total_bytes_accessed().equals(spec.graph->total_bytes_accessed()));
}

// Targeted check of the fused-op attr grammar itself: the GEMM epilogue
// serializes as one `attr epi <has_bias> <fn>` line and the interpreter
// program as `attr prog <n>` + one `attr i<j>` line per instruction, and a
// truncated program line is rejected rather than silently shortened.
TEST(GraphSerialize, FusedOpAttrsSurviveTextually) {
  ir::Graph g("fused_attrs");
  const Expr b = Expr::symbol("batch");
  auto* x = g.add_input("x", ir::TensorShape{b, Expr(8)});
  auto* u = g.add_input("u", ir::TensorShape{b, Expr(8)});
  auto* w = g.add_weight("w", ir::TensorShape{Expr(8), Expr(8)});
  auto* bias = g.add_weight("bias", ir::TensorShape{Expr(8)});
  auto* h = ir::tanh(g, "act", ir::bias_add(g, "badd", ir::matmul(g, "mm", x, w), bias));
  ir::relu(g, "r", ir::mul(g, "m", ir::tanh(g, "t", h), u));

  const ir::FusionResult r = ir::fuse_graph(g);
  EXPECT_EQ(r.gemm_epilogues, 1u);
  EXPECT_EQ(r.pointwise_groups, 1u);

  const std::string text = ir::serialize(g);
  EXPECT_NE(text.find("attr epi 1 tanh"), std::string::npos);
  EXPECT_NE(text.find("attr prog 3"), std::string::npos);
  EXPECT_NE(text.find("attr i0 tanh"), std::string::npos);

  const auto loaded = ir::deserialize(text);
  EXPECT_EQ(ir::serialize(*loaded), text);

  std::string corrupt = text;
  corrupt.replace(corrupt.find("attr i0 tanh"), 12, "attr i0     ");
  EXPECT_THROW(ir::deserialize(corrupt), std::invalid_argument);
}

TEST(GraphSerialize, RejectsCorruptedInput) {
  EXPECT_THROW(ir::deserialize(std::string("nonsense")), std::invalid_argument);
  EXPECT_THROW(ir::deserialize(std::string("graph g\nop MatMul m\nin 0 1\nout 2\n")),
               std::invalid_argument);
  const auto spec = models::build_word_lm({.vocab = 20, .layers = 1, .seq_length = 2});
  std::string text = ir::serialize(*spec.graph);
  text.replace(text.find("MatMul"), 6, "MadMul");
  EXPECT_THROW(ir::deserialize(text), std::invalid_argument);
}

TEST(GraphSerialize, DotExportContainsOpsAndTruncates) {
  const auto spec = models::build_word_lm({.vocab = 20, .layers = 1, .seq_length = 2});
  const std::string dot = ir::to_dot(*spec.graph, 10);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("MatMul"), std::string::npos);
  EXPECT_NE(dot.find("more ops"), std::string::npos);  // truncation marker
  const std::string full = ir::to_dot(*spec.graph, 100000);
  EXPECT_EQ(full.find("more ops"), std::string::npos);
}

/// Two independent branches off separate inputs; `reversed` flips the
/// insertion order of the (dataflow-independent) ops, and `shift_ids`
/// burns a tensor id before building so every real tensor is relabeled.
void build_branches(ir::Graph& g, bool reversed, bool shift_ids = false) {
  ir::Tensor* dummy =
      shift_ids ? g.add_input("dummy", {Expr(1)}) : nullptr;
  ir::Tensor* x = g.add_input("x", {Expr(4), Expr(8)});
  ir::Tensor* y = g.add_input("y", {Expr(4), Expr(8)});
  if (reversed) {
    ir::tanh(g, "b", y);
    ir::relu(g, "a", x);
  } else {
    ir::relu(g, "a", x);
    ir::tanh(g, "b", y);
  }
  if (dummy != nullptr) g.remove_tensor(dummy);
}

TEST(CanonicalHash, InvariantUnderOpInsertionOrder) {
  ir::Graph forward("branches"), reversed("branches");
  build_branches(forward, false);
  build_branches(reversed, true);
  EXPECT_EQ(ir::canonical_hash(forward), ir::canonical_hash(reversed));
}

TEST(CanonicalHash, InvariantUnderTensorIdRelabeling) {
  ir::Graph plain("branches"), shifted("branches");
  build_branches(plain, false);
  build_branches(shifted, false, /*shift_ids=*/true);
  // Same structure, every tensor id off by one: the hash must not see ids.
  EXPECT_EQ(ir::canonical_hash(plain), ir::canonical_hash(shifted));
}

TEST(CanonicalHash, SurvivesSerializationRoundTrip) {
  const auto spec = models::build_word_lm({.vocab = 30, .layers = 1, .seq_length = 3});
  const std::uint64_t before = ir::canonical_hash(*spec.graph);
  const auto loaded = ir::deserialize(ir::serialize(*spec.graph));
  EXPECT_EQ(ir::canonical_hash(*loaded), before);
  // Rebuilding the family from scratch is also content-identical — the
  // determinism the serve-layer "build" cache stage relies on.
  const auto again = models::build_word_lm({.vocab = 30, .layers = 1, .seq_length = 3});
  EXPECT_EQ(ir::canonical_hash(*again.graph), before);
}

TEST(CanonicalHash, StructuralDifferencesChangeTheHash) {
  ir::Graph base("g");
  build_branches(base, false);
  const std::uint64_t h = ir::canonical_hash(base);

  ir::Graph different_fn("g");  // relu -> sigmoid on one branch
  {
    ir::Tensor* x = different_fn.add_input("x", {Expr(4), Expr(8)});
    ir::Tensor* y = different_fn.add_input("y", {Expr(4), Expr(8)});
    ir::sigmoid(different_fn, "a", x);
    ir::tanh(different_fn, "b", y);
  }
  EXPECT_NE(ir::canonical_hash(different_fn), h);

  ir::Graph extra_op("g");  // one more consumer of the same input
  build_branches(extra_op, false);
  ir::relu(extra_op, "c", extra_op.tensors()[0].get());
  EXPECT_NE(ir::canonical_hash(extra_op), h);

  ir::Graph rewired("g");  // both branches read the same input
  {
    ir::Tensor* x = rewired.add_input("x", {Expr(4), Expr(8)});
    rewired.add_input("y", {Expr(4), Expr(8)});
    ir::relu(rewired, "a", x);
    ir::tanh(rewired, "b", x);
  }
  EXPECT_NE(ir::canonical_hash(rewired), h);

  ir::Graph renamed("other_name");
  build_branches(renamed, false);
  EXPECT_NE(ir::canonical_hash(renamed), h);

  ir::Graph marked("g");  // same ops, but one tensor marked as an output
  build_branches(marked, false);
  marked.mark_output(marked.tensors().back().get());
  EXPECT_NE(ir::canonical_hash(marked), h);
}

TEST(CanonicalHash, DistinguishesModelFamilies) {
  const auto word = models::build_word_lm({.vocab = 30, .layers = 1, .seq_length = 3});
  const auto chars = models::build_char_lm({.vocab = 30, .depth = 2, .seq_length = 3});
  EXPECT_NE(ir::canonical_hash(*word.graph), ir::canonical_hash(*chars.graph));
}

}  // namespace
}  // namespace gf

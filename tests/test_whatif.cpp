// What-if simulator tests: golden-trace schema round trip (hand-computed
// schedule numbers), writer -> loader fidelity, versioned-format rejection,
// profiler dep-edge export vs the scheduler DAG, the identity property
// (re-simulating an unmodified profile reproduces the measured span) across
// every built-in model and thread count, schedule-theory properties on
// randomized DAGs (Graham bounds, scale monotonicity), transform arithmetic
// against hand-worked examples, fusion-group planning vs the real rewrite,
// and the headline calibration gate: predicting the measured fusion win on
// word_lm from an unfused profile within 15% relative step-time error.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/concurrency/thread_pool.h"
#include "src/ir/fusion.h"
#include "src/ir/graph.h"
#include "src/ir/serialize.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"
#include "src/runtime/profiler.h"
#include "src/whatif/resim.h"
#include "src/whatif/trace.h"
#include "src/whatif/transform.h"

namespace gf {
namespace {

struct ModelCase {
  const char* name;
  models::ModelSpec spec;
  double hidden;
};

/// All six built-in model families at toy sizes (mirrors test_fusion.cpp).
std::vector<ModelCase> builtin_models() {
  std::vector<ModelCase> cases;
  {
    models::WordLmConfig cfg;
    cfg.vocab = 40;
    cfg.seq_length = 5;
    cfg.layers = 2;
    cases.push_back({"word_lm", models::build_word_lm(cfg), 8});
  }
  {
    models::CharLmConfig cfg;
    cfg.vocab = 20;
    cfg.depth = 3;
    cfg.seq_length = 4;
    cases.push_back({"char_lm", models::build_char_lm(cfg), 8});
  }
  {
    models::NmtConfig cfg;
    cfg.vocab_src = 30;
    cfg.vocab_tgt = 30;
    cfg.src_length = 4;
    cfg.tgt_length = 3;
    cfg.decoder_layers = 1;
    cases.push_back({"nmt", models::build_nmt(cfg), 8});
  }
  {
    models::SpeechConfig cfg;
    cfg.audio_frames = 8;
    cfg.feature_dim = 5;
    cfg.encoder_layers = 2;
    cfg.decoder_length = 3;
    cfg.vocab = 15;
    cases.push_back({"speech", models::build_speech(cfg), 6});
  }
  {
    models::ResNetConfig cfg;
    cfg.depth = 18;
    cfg.image_size = 32;
    cfg.classes = 10;
    cases.push_back({"resnet", models::build_resnet(cfg), 4});
  }
  {
    models::TransformerLmConfig cfg;
    cfg.vocab = 40;
    cfg.layers = 2;
    cfg.seq_length = 6;
    cases.push_back({"transformer_lm", models::build_transformer_lm(cfg), 8});
  }
  return cases;
}

/// Profiles one steady-state step. Fusion and planning are pinned OFF
/// explicitly (CI reruns the suite with GF_FUSE / GF_MEMORY_PLAN set, which
/// would otherwise flip the ExecutorOptions defaults under this test).
rt::ProfileReport profile_step(const ir::Graph& graph, const sym::Bindings& bind,
                               conc::ThreadPool* pool = nullptr,
                               rt::Schedule schedule = rt::Schedule::kSequential) {
  rt::ExecutorOptions opt;
  opt.pool = pool;
  opt.schedule = schedule;
  opt.fuse = false;
  opt.memory_plan = false;
  rt::Executor ex(graph, bind, opt);
  ex.run_step();  // warm-up: weight-gradient buffers and GEMM scratch
  return ex.run_step();
}

whatif::Trace load_golden() {
  return whatif::load_trace_file(std::string(GF_TEST_DATA_DIR) +
                                 "/golden_trace_v1.json");
}

whatif::Trace load_from_string(const std::string& json) {
  std::istringstream is(json);
  return whatif::load_trace(is);
}

/// A random dependency DAG with durations, realized into a consistent
/// recorded schedule by greedy list scheduling — so recorded-placement
/// replay of the result is well defined. Deterministic per seed.
whatif::Trace random_trace(unsigned seed, std::size_t n, int workers) {
  std::minstd_rand rng(seed);
  const char* kTypes[] = {"MatMul", "Pointwise", "Reduce", "BiasAdd"};
  whatif::Trace trace;
  trace.ops.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    whatif::TraceOp& op = trace.ops[i];
    op.name = "op" + std::to_string(i);
    op.type = kTypes[rng() % 4];
    const double duration = (1.0 + static_cast<double>(rng() % 100)) * 1e-6;
    op.start_seconds = 0;
    op.end_seconds = duration;
    op.flops = static_cast<double>(rng() % 1000);
    op.bytes = static_cast<double>(1 + rng() % 1000);
    if (i > 0) {
      for (int k = 0; k < 3; ++k)
        if (rng() % 3 == 0) op.deps.push_back(rng() % i);
      std::sort(op.deps.begin(), op.deps.end());
      op.deps.erase(std::unique(op.deps.begin(), op.deps.end()), op.deps.end());
    }
  }
  whatif::ResimOptions opt;
  opt.placement = whatif::Placement::kGreedy;
  opt.workers = workers;
  const whatif::ResimResult sim = whatif::resimulate(trace, opt);
  for (std::size_t i = 0; i < n; ++i) {
    trace.ops[i].start_seconds = sim.ops[i].start_seconds;
    trace.ops[i].end_seconds = sim.ops[i].end_seconds;
    trace.ops[i].worker = sim.ops[i].worker;
  }
  trace.wall_seconds = sim.makespan_seconds;
  return trace;
}

// --- golden trace: schema + hand-computed schedule --------------------------

TEST(WhatifGolden, RoundTripsEveryField) {
  const whatif::Trace t = load_golden();
  EXPECT_EQ(t.version, rt::kGfTraceVersion);
  EXPECT_DOUBLE_EQ(t.wall_seconds, 5.2e-5);
  ASSERT_EQ(t.ops.size(), 5u);
  EXPECT_EQ(t.num_workers(), 2);
  // The fixture's events are deliberately out of op_index order and include
  // a ph:"M" metadata row; the loader must sort and skip.
  const char* names[] = {"load", "left", "right", "join", "side"};
  const char* types[] = {"EmbeddingLookup", "Pointwise", "MatMul", "Pointwise",
                         "Reduce"};
  const int workers[] = {0, 0, 1, 0, 1};
  const double starts_us[] = {0, 10, 12, 42, 42};
  const double durs_us[] = {10, 20, 30, 8, 5};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t.ops[i].name, names[i]) << i;
    EXPECT_EQ(t.ops[i].type, types[i]) << i;
    EXPECT_EQ(t.ops[i].worker, workers[i]) << i;
    EXPECT_DOUBLE_EQ(t.ops[i].start_seconds * 1e6, starts_us[i]) << i;
    EXPECT_NEAR(t.ops[i].duration() * 1e6, durs_us[i], 1e-9) << i;
  }
  EXPECT_EQ(t.ops[3].deps, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(t.ops[1].deps, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(t.ops[4].deps.empty());
  EXPECT_DOUBLE_EQ(t.span_seconds() * 1e6, 50);
  EXPECT_NEAR(t.busy_seconds() * 1e6, 73, 1e-9);
  EXPECT_DOUBLE_EQ(t.total_flops(), 650);
  EXPECT_DOUBLE_EQ(t.total_bytes(), 2564);
}

TEST(WhatifGolden, RecordedReplayMatchesHandSchedule) {
  // Lanes: w0 = load, left, join; w1 = right, side. Replay compresses the
  // recorded idle gaps: right starts when its dep ends (10us, not 12us),
  // join when right ends (40us), so the makespan is 48us, not the 50us span.
  const whatif::Trace t = load_golden();
  const whatif::ResimResult r = whatif::resimulate(t);
  EXPECT_NEAR(r.makespan_seconds * 1e6, 48, 1e-9);
  EXPECT_NEAR(r.busy_seconds * 1e6, 73, 1e-9);
  const double starts_us[] = {0, 10, 10, 40, 40};
  const double ends_us[] = {10, 30, 40, 48, 45};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(r.ops[i].start_seconds * 1e6, starts_us[i], 1e-9) << i;
    EXPECT_NEAR(r.ops[i].end_seconds * 1e6, ends_us[i], 1e-9) << i;
    EXPECT_EQ(r.ops[i].worker, t.ops[i].worker) << i;
  }
  EXPECT_NEAR(r.critical_path_seconds * 1e6, 48, 1e-9);
  EXPECT_EQ(r.critical_path, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(WhatifGolden, GreedyPlacementMatchesHandSchedule) {
  const whatif::Trace t = load_golden();
  whatif::ResimOptions opt;
  opt.placement = whatif::Placement::kGreedy;
  opt.workers = 2;
  EXPECT_NEAR(whatif::resimulate(t, opt).makespan_seconds * 1e6, 48, 1e-9);
  // workers = 0 means "the trace's recorded lane count" (also 2 here).
  opt.workers = 0;
  EXPECT_NEAR(whatif::resimulate(t, opt).makespan_seconds * 1e6, 48, 1e-9);
  // One lane serializes everything.
  opt.workers = 1;
  EXPECT_NEAR(whatif::resimulate(t, opt).makespan_seconds * 1e6, 73, 1e-9);
}

TEST(WhatifGolden, CalibrationSolvesTheSurchargeExactly) {
  // Replay makespan is 48 + 3*delta (three ops on the binding chain); the
  // measured span is 50us, so the calibrated surcharge is 2/3 us.
  const whatif::Trace t = load_golden();
  const double overhead = whatif::calibrate_overhead(t);
  EXPECT_NEAR(overhead * 1e6, 2.0 / 3.0, 1e-6);
  whatif::ResimOptions opt;
  opt.overhead_seconds_per_op = overhead;
  EXPECT_NEAR(whatif::resimulate(t, opt).makespan_seconds, t.span_seconds(),
              t.span_seconds() * 1e-9);
}

// --- writer -> loader fidelity ----------------------------------------------

TEST(WhatifLoader, WriterOutputRoundTrips) {
  const ModelCase c = builtin_models().front();
  const rt::ProfileReport report = profile_step(*c.spec.graph, c.spec.bind(c.hidden, 2));
  const whatif::Trace direct = whatif::from_report(report);

  std::ostringstream os;
  report.write_chrome_trace(os);
  const whatif::Trace loaded = load_from_string(os.str());

  EXPECT_EQ(loaded.version, rt::kGfTraceVersion);
  ASSERT_EQ(loaded.ops.size(), direct.ops.size());
  EXPECT_DOUBLE_EQ(loaded.wall_seconds, direct.wall_seconds);
  for (std::size_t i = 0; i < loaded.ops.size(); ++i) {
    EXPECT_EQ(loaded.ops[i].name, direct.ops[i].name) << i;
    EXPECT_EQ(loaded.ops[i].type, direct.ops[i].type) << i;
    EXPECT_EQ(loaded.ops[i].worker, direct.ops[i].worker) << i;
    EXPECT_EQ(loaded.ops[i].deps, direct.ops[i].deps) << i;
    EXPECT_DOUBLE_EQ(loaded.ops[i].flops, direct.ops[i].flops) << i;
    EXPECT_DOUBLE_EQ(loaded.ops[i].bytes, direct.ops[i].bytes) << i;
    // Timestamps pass through a seconds -> microseconds -> seconds scaling,
    // so allow the two rounding steps (values are written at max_digits10).
    EXPECT_NEAR(loaded.ops[i].start_seconds, direct.ops[i].start_seconds, 1e-12) << i;
    EXPECT_NEAR(loaded.ops[i].end_seconds, direct.ops[i].end_seconds, 1e-12) << i;
  }
}

TEST(WhatifLoader, RejectsUnknownVersion) {
  EXPECT_THROW(
      {
        try {
          load_from_string(R"({"gfTraceVersion":2,"traceEvents":[]})");
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("unknown gfTraceVersion 2"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(WhatifLoader, RejectsMissingVersion) {
  EXPECT_THROW(
      {
        try {
          load_from_string(R"({"traceEvents":[]})");
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("predates"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(WhatifLoader, RejectsStructurallyBrokenInput) {
  // Malformed JSON.
  EXPECT_THROW(load_from_string(R"({"gfTraceVersion":1,)"), std::runtime_error);
  // Trailing garbage.
  EXPECT_THROW(load_from_string("{} extra"), std::runtime_error);
  // Not an object at top level.
  EXPECT_THROW(load_from_string("[1,2,3]"), std::runtime_error);
  // Missing traceEvents.
  EXPECT_THROW(load_from_string(R"({"gfTraceVersion":1})"), std::runtime_error);
  // Event without a deps list: not replayable.
  EXPECT_THROW(
      load_from_string(
          R"({"gfTraceVersion":1,"traceEvents":[{"name":"a","ph":"X","tid":1,)"
          R"("ts":0,"dur":1,"args":{"op_index":0,"flops":0,"bytes":0}}]})"),
      std::runtime_error);
  // op_index values not the dense range 0..n-1.
  EXPECT_THROW(
      load_from_string(
          R"({"gfTraceVersion":1,"traceEvents":[)"
          R"({"name":"a","ph":"X","tid":1,"ts":0,"dur":1,)"
          R"("args":{"op_index":0,"flops":0,"bytes":0,"deps":[]}},)"
          R"({"name":"b","ph":"X","tid":1,"ts":1,"dur":1,)"
          R"("args":{"op_index":2,"flops":0,"bytes":0,"deps":[]}}]})"),
      std::runtime_error);
  // A dep pointing at the op itself (not earlier in topological order).
  EXPECT_THROW(
      load_from_string(
          R"({"gfTraceVersion":1,"traceEvents":[{"name":"a","ph":"X","tid":1,)"
          R"("ts":0,"dur":1,"args":{"op_index":0,"flops":0,"bytes":0,"deps":[0]}}]})"),
      std::exception);
}

// --- profiler dep edges vs the scheduler DAG --------------------------------

TEST(WhatifDeps, TimelineEdgesMatchOpDag) {
  const ModelCase c = builtin_models().front();
  const sym::Bindings bind = c.spec.bind(c.hidden, 2);
  const rt::ProfileReport report = profile_step(*c.spec.graph, bind);
  const ir::OpDag dag = ir::build_op_dag(*c.spec.graph);
  ASSERT_EQ(report.timeline.size(), dag.order.size());

  // Invert the DAG's successor lists into per-op predecessor lists.
  std::vector<std::vector<std::size_t>> preds(dag.order.size());
  for (std::size_t i = 0; i < dag.successors.size(); ++i)
    for (std::size_t s : dag.successors[i]) preds[s].push_back(i);
  for (auto& p : preds) std::sort(p.begin(), p.end());

  for (std::size_t i = 0; i < report.timeline.size(); ++i) {
    EXPECT_EQ(report.timeline[i].op_index, i);
    EXPECT_EQ(report.timeline[i].deps, preds[i]) << "op " << i;
    EXPECT_EQ(report.timeline[i].deps.size(), dag.predecessor_count[i]) << i;
  }
}

TEST(WhatifDeps, MemoryPlanAddsOnlyExtraEdges) {
  // With the planner active the exported deps are the data edges plus the
  // plan's reuse edges — a superset per op, never a replacement.
  const ModelCase c = builtin_models().front();
  const sym::Bindings bind = c.spec.bind(c.hidden, 2);
  rt::ExecutorOptions opt;
  opt.schedule = rt::Schedule::kSequential;
  opt.fuse = false;
  opt.memory_plan = true;
  rt::Executor ex(*c.spec.graph, bind, opt);
  ex.run_step();
  const rt::ProfileReport planned = ex.run_step();
  const rt::ProfileReport bare = profile_step(*c.spec.graph, bind);
  ASSERT_EQ(planned.timeline.size(), bare.timeline.size());
  for (std::size_t i = 0; i < planned.timeline.size(); ++i) {
    const auto& with_plan = planned.timeline[i].deps;
    for (std::size_t d : bare.timeline[i].deps)
      EXPECT_TRUE(std::binary_search(with_plan.begin(), with_plan.end(), d))
          << "op " << i << " lost data edge " << d << " under the memory plan";
  }
}

// --- identity property: replaying an unmodified profile ---------------------

TEST(WhatifIdentity, BuiltinModelsAcrossThreadCounts) {
  for (const ModelCase& c : builtin_models()) {
    const sym::Bindings bind = c.spec.bind(c.hidden, 2);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      conc::ThreadPool pool(threads);
      const rt::ProfileReport report =
          profile_step(*c.spec.graph, bind, &pool, rt::Schedule::kWavefront);
      const whatif::Trace trace = whatif::from_report(report);
      const double span = trace.span_seconds();
      ASSERT_GT(span, 0);

      // Uncharged replay compresses scheduling gaps: it can never beat the
      // critical path nor exceed the measured span.
      const whatif::ResimResult base = whatif::resimulate(trace);
      EXPECT_GE(base.makespan_seconds, base.critical_path_seconds * (1 - 1e-9))
          << c.name << " threads=" << threads;
      EXPECT_LE(base.makespan_seconds, span * (1 + 1e-9))
          << c.name << " threads=" << threads;

      // The calibrated surcharge reproduces the measured span.
      whatif::ResimOptions opt;
      opt.overhead_seconds_per_op = whatif::calibrate_overhead(trace);
      EXPECT_GE(opt.overhead_seconds_per_op, 0);
      const double identity = whatif::resimulate(trace, opt).makespan_seconds;
      EXPECT_NEAR(identity, span, span * 1e-6) << c.name << " threads=" << threads;
    }
  }
}

TEST(WhatifIdentity, ResimulationIsDeterministic) {
  const ModelCase c = builtin_models().front();
  conc::ThreadPool pool(4);
  const whatif::Trace trace = whatif::from_report(
      profile_step(*c.spec.graph, c.spec.bind(c.hidden, 2), &pool,
                   rt::Schedule::kWavefront));
  whatif::ResimOptions opt;
  opt.overhead_seconds_per_op = 1e-7;
  const whatif::ResimResult a = whatif::resimulate(trace, opt);
  const whatif::ResimResult b = whatif::resimulate(trace, opt);
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);  // bitwise, not approx
  EXPECT_EQ(a.busy_seconds, b.busy_seconds);
  EXPECT_EQ(a.critical_path_seconds, b.critical_path_seconds);
  EXPECT_EQ(a.critical_path, b.critical_path);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].start_seconds, b.ops[i].start_seconds);
    EXPECT_EQ(a.ops[i].end_seconds, b.ops[i].end_seconds);
    EXPECT_EQ(a.ops[i].worker, b.ops[i].worker);
  }
}

TEST(WhatifIdentity, RandomGreedySchedulesReplayExactly) {
  // A trace realized by the greedy scheduler has no idle-while-ready gaps,
  // so recorded-placement replay reproduces it exactly.
  for (const unsigned seed : {1u, 7u, 42u, 1234u}) {
    const whatif::Trace trace = random_trace(seed, 60, 3);
    const whatif::ResimResult r = whatif::resimulate(trace);
    EXPECT_DOUBLE_EQ(r.makespan_seconds, trace.span_seconds()) << "seed " << seed;
    for (std::size_t i = 0; i < trace.ops.size(); ++i) {
      EXPECT_DOUBLE_EQ(r.ops[i].start_seconds, trace.ops[i].start_seconds) << i;
      EXPECT_DOUBLE_EQ(r.ops[i].end_seconds, trace.ops[i].end_seconds) << i;
    }
  }
}

TEST(WhatifIdentity, EmptyTraceIsHarmless) {
  const whatif::Trace empty;
  EXPECT_DOUBLE_EQ(whatif::resimulate(empty).makespan_seconds, 0);
  EXPECT_DOUBLE_EQ(whatif::calibrate_overhead(empty), 0);
}

TEST(WhatifIdentity, ContradictoryLaneOrderIsRejected) {
  // Two ops on one lane whose recorded order inverts their dependency:
  // replay would deadlock, so resimulate must throw instead.
  whatif::Trace trace;
  trace.ops.resize(2);
  trace.ops[0] = {"late", "Pointwise", 0, 10e-6, 12e-6, 0, 0, {}};
  trace.ops[1] = {"early", "Pointwise", 0, 0, 2e-6, 0, 0, {0}};
  EXPECT_THROW(whatif::resimulate(trace), std::invalid_argument);
  EXPECT_THROW(
      {
        whatif::ResimOptions opt;
        opt.overhead_seconds_per_op = -1e-9;
        whatif::resimulate(load_golden(), opt);
      },
      std::invalid_argument);
}

// --- schedule-theory properties on randomized DAGs --------------------------

TEST(WhatifProperties, GrahamBoundsHoldOnRandomDags) {
  // Any greedy list schedule on W lanes satisfies
  //   critical_path <= makespan <= busy/W + critical_path.
  for (const unsigned seed : {3u, 11u, 99u, 2024u}) {
    const whatif::Trace trace = random_trace(seed, 80, 4);
    for (const int workers : {1, 2, 3, 5, 16}) {
      whatif::ResimOptions opt;
      opt.placement = whatif::Placement::kGreedy;
      opt.workers = workers;
      const whatif::ResimResult r = whatif::resimulate(trace, opt);
      EXPECT_GE(r.makespan_seconds, r.critical_path_seconds * (1 - 1e-12))
          << "seed " << seed << " W=" << workers;
      EXPECT_LE(r.makespan_seconds,
                r.busy_seconds / workers + r.critical_path_seconds + 1e-12)
          << "seed " << seed << " W=" << workers;
    }
  }
}

TEST(WhatifProperties, GreedyDegenerateWorkerCounts) {
  for (const unsigned seed : {5u, 17u}) {
    const whatif::Trace trace = random_trace(seed, 50, 2);
    whatif::ResimOptions opt;
    opt.placement = whatif::Placement::kGreedy;
    // One lane: the makespan is the serialized busy time.
    opt.workers = 1;
    const whatif::ResimResult serial = whatif::resimulate(trace, opt);
    EXPECT_DOUBLE_EQ(serial.makespan_seconds, serial.busy_seconds);
    // More lanes than ops: every op starts the moment its deps finish, so
    // the makespan collapses to the critical path.
    opt.workers = static_cast<int>(trace.ops.size());
    const whatif::ResimResult wide = whatif::resimulate(trace, opt);
    EXPECT_DOUBLE_EQ(wide.makespan_seconds, wide.critical_path_seconds);
  }
}

TEST(WhatifProperties, GreedyMonotoneInWorkerCountOnFixedSeeds) {
  // List scheduling is not monotone in worker count in general (Graham's
  // anomalies), so this asserts on fixed, pre-verified seeds only — the
  // property the `gfctl whatif --workers` flow relies on for these DAGs.
  for (const unsigned seed : {3u, 11u, 42u, 99u}) {
    const whatif::Trace trace = random_trace(seed, 80, 4);
    double prev = 0;
    bool first = true;
    for (const int workers : {1, 2, 4, 8, 16}) {
      whatif::ResimOptions opt;
      opt.placement = whatif::Placement::kGreedy;
      opt.workers = workers;
      const double makespan = whatif::resimulate(trace, opt).makespan_seconds;
      if (!first) {
        EXPECT_LE(makespan, prev * (1 + 1e-12)) << "seed " << seed << " W=" << workers;
      }
      prev = makespan;
      first = false;
    }
  }
}

TEST(WhatifProperties, SpeedingAKernelClassNeverHurtsRecordedReplay) {
  // Under recorded placement, shrinking any subset of durations can never
  // lengthen the replayed schedule (no placement decisions to destabilize).
  const char* kClasses[] = {"MatMul", "Pointwise", "Reduce", "BiasAdd", "*"};
  for (const unsigned seed : {3u, 21u, 77u}) {
    const whatif::Trace trace = random_trace(seed, 70, 3);
    const double base = whatif::resimulate(trace).makespan_seconds;
    for (const char* cls : kClasses) {
      for (const double speedup : {1.5, 2.0, 10.0}) {
        const whatif::Trace faster =
            whatif::scale_kernel_class(trace, {cls, speedup});
        EXPECT_LE(whatif::resimulate(faster).makespan_seconds, base * (1 + 1e-12))
            << "seed " << seed << " class " << cls << " x" << speedup;
      }
    }
  }
}

// --- transform arithmetic ---------------------------------------------------

whatif::Trace four_op_chain() {
  // m0 (MatMul, 10us) -> p1 (Pointwise, 20us) -> p2 (Pointwise, 10us)
  //   -> t3 (Reduce, 5us), all on one lane, back to back.
  whatif::Trace t;
  t.ops.resize(4);
  t.ops[0] = {"m0", "MatMul", 0, 0, 10e-6, 4000, 100, {}};
  t.ops[1] = {"p1", "Pointwise", 0, 10e-6, 30e-6, 200, 800, {0}};
  t.ops[2] = {"p2", "Pointwise", 0, 30e-6, 40e-6, 100, 400, {1}};
  t.ops[3] = {"t3", "Reduce", 0, 40e-6, 45e-6, 50, 200, {2}};
  t.wall_seconds = 45e-6;
  return t;
}

TEST(WhatifTransform, ScaleKernelClassArithmetic) {
  const whatif::Trace t = four_op_chain();
  const whatif::Trace fast = whatif::scale_kernel_class(t, {"MatMul", 2.0});
  EXPECT_DOUBLE_EQ(fast.ops[0].duration(), 5e-6);          // halved
  EXPECT_DOUBLE_EQ(fast.ops[0].start_seconds, 0);          // start preserved
  EXPECT_DOUBLE_EQ(fast.ops[1].duration(), 20e-6);         // other types untouched
  const whatif::Trace all = whatif::scale_kernel_class(t, {"*", 2.0});
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(all.ops[i].duration(), t.ops[i].duration() / 2) << i;
  // speedup < 1 models a slowdown; <= 0 is rejected.
  EXPECT_DOUBLE_EQ(whatif::scale_kernel_class(t, {"Reduce", 0.5}).ops[3].duration(),
                   10e-6);
  EXPECT_THROW(whatif::scale_kernel_class(t, {"MatMul", 0.0}), std::invalid_argument);
  EXPECT_THROW(whatif::scale_kernel_class(t, {"MatMul", -1.0}), std::invalid_argument);
}

TEST(WhatifTransform, DtypeSwitchScalesBandwidthBoundOpsOnly) {
  const whatif::Trace t = four_op_chain();
  const whatif::Trace bf16 = whatif::switch_dtype_traffic(t);  // ratio 0.5
  // m0: 4000 flops / 100 bytes = 40 flop/B — compute bound, time kept.
  EXPECT_DOUBLE_EQ(bf16.ops[0].duration(), 10e-6);
  EXPECT_DOUBLE_EQ(bf16.ops[0].bytes, 50);  // traffic halves regardless
  // p1: 0.25 flop/B — bandwidth bound, time and bytes halve.
  EXPECT_DOUBLE_EQ(bf16.ops[1].duration(), 10e-6);
  EXPECT_DOUBLE_EQ(bf16.ops[1].bytes, 400);
  // Zero-byte ops are untouched.
  whatif::Trace zero = t;
  zero.ops[3].bytes = 0;
  EXPECT_DOUBLE_EQ(whatif::switch_dtype_traffic(zero).ops[3].duration(), 5e-6);
  whatif::DtypeOptions bad;
  bad.byte_ratio = 0;
  EXPECT_THROW(whatif::switch_dtype_traffic(t, bad), std::invalid_argument);
}

TEST(WhatifTransform, FuseGroupDurationModel) {
  const whatif::Trace t = four_op_chain();
  whatif::FuseGroup group;
  group.name = "m0:fused";
  group.members = {0, 1, 2};
  group.fused_flops = 4300;
  // anchor bytes 100 + 600 surviving member bytes; members carry 1200, so
  // the byte share is 0.5.
  group.fused_bytes = 700;

  const whatif::Trace fused = whatif::fuse_groups(t, {group});
  ASSERT_EQ(fused.ops.size(), 2u);
  const whatif::TraceOp& node = fused.ops[0];
  EXPECT_EQ(node.name, "m0:fused");
  EXPECT_EQ(node.type, "MatMul");  // anchored group keeps the anchor's type
  EXPECT_DOUBLE_EQ(node.flops, 4300);
  EXPECT_DOUBLE_EQ(node.bytes, 700);
  // anchor 10us + members 30us * ((1 - 0.5) + 0.5 * 0.5) = 10 + 22.5.
  EXPECT_NEAR(node.duration() * 1e6, 32.5, 1e-9);
  EXPECT_DOUBLE_EQ(node.start_seconds, 0);  // first member's slot
  EXPECT_EQ(fused.ops[1].name, "t3");
  EXPECT_EQ(fused.ops[1].deps, (std::vector<std::size_t>{0}));

  // memory_weight endpoints: w=0 keeps member time, w=1 prices it as pure
  // traffic (byte share 0.5).
  whatif::FuseModelOptions w0;
  w0.memory_weight = 0;
  EXPECT_NEAR(whatif::fuse_groups(t, {group}, w0).ops[0].duration() * 1e6, 40, 1e-9);
  whatif::FuseModelOptions w1;
  w1.memory_weight = 1;
  EXPECT_NEAR(whatif::fuse_groups(t, {group}, w1).ops[0].duration() * 1e6, 25, 1e-9);

  // A group with no compute anchor becomes a FusedPointwise node.
  whatif::FuseGroup tail;
  tail.name = "tail:fused";
  tail.members = {1, 2};
  tail.fused_flops = 300;
  tail.fused_bytes = 900;
  const whatif::Trace tail_fused = whatif::fuse_groups(t, {tail});
  ASSERT_EQ(tail_fused.ops.size(), 3u);
  EXPECT_EQ(tail_fused.ops[1].type, "FusedPointwise");
}

TEST(WhatifTransform, FuseDropsCarriedForwardEdges) {
  // Group {0, 2} with an interleaved outsider that feeds member 2: after
  // contraction the outsider's edge into the group would point forward of
  // the merged node's slot — a constraint of the profiled program's
  // schedule, not of the hypothetical fused program — so it is dropped.
  whatif::Trace t;
  t.ops.resize(3);
  t.ops[0] = {"a", "Pointwise", 0, 0, 10e-6, 10, 100, {}};
  t.ops[1] = {"mid", "Pointwise", 0, 10e-6, 20e-6, 10, 100, {0}};
  t.ops[2] = {"b", "Pointwise", 0, 20e-6, 30e-6, 10, 100, {1}};
  whatif::FuseGroup group;
  group.name = "ab";
  group.members = {0, 2};
  group.fused_flops = 20;
  group.fused_bytes = 150;
  const whatif::Trace fused = whatif::fuse_groups(t, {group});
  ASSERT_EQ(fused.ops.size(), 2u);
  EXPECT_EQ(fused.ops[0].name, "ab");
  EXPECT_TRUE(fused.ops[0].deps.empty());  // forward edge from 'mid' dropped
  EXPECT_EQ(fused.ops[1].name, "mid");
  // mid's edge onto member 'a' points backward at the merged node and stays.
  EXPECT_EQ(fused.ops[1].deps, (std::vector<std::size_t>{0}));
}

TEST(WhatifTransform, FuseGroupValidation) {
  const whatif::Trace t = four_op_chain();
  whatif::FuseGroup g;
  g.name = "bad";
  g.members = {1};
  EXPECT_THROW(whatif::fuse_groups(t, {g}), std::invalid_argument);  // < 2 members
  g.members = {2, 1};
  EXPECT_THROW(whatif::fuse_groups(t, {g}), std::invalid_argument);  // not ascending
  g.members = {1, 9};
  EXPECT_THROW(whatif::fuse_groups(t, {g}), std::invalid_argument);  // out of range
  g.members = {1, 2};
  whatif::FuseGroup overlap = g;
  overlap.name = "bad2";
  overlap.members = {2, 3};
  EXPECT_THROW(whatif::fuse_groups(t, {g, overlap}), std::invalid_argument);
  whatif::FuseModelOptions w;
  w.memory_weight = 1.5;
  EXPECT_THROW(whatif::fuse_groups(t, {g}, w), std::invalid_argument);
  w.memory_weight = -0.1;
  EXPECT_THROW(whatif::fuse_groups(t, {g}, w), std::invalid_argument);
}

// --- fusion-group planning vs the real rewrite ------------------------------

TEST(WhatifPlan, MatchesFuseGraphOnEveryBuiltinModel) {
  for (const ModelCase& c : builtin_models()) {
    const sym::Bindings bind = c.spec.bind(c.hidden, 2);
    const whatif::Trace trace =
        whatif::from_report(profile_step(*c.spec.graph, bind));

    const auto groups = whatif::plan_fusion_groups(*c.spec.graph, bind, trace);
    ASSERT_FALSE(groups.empty()) << c.name;
    const whatif::Trace fused_trace = whatif::fuse_groups(trace, groups);

    // Ground truth: the real rewrite on a clone.
    const std::unique_ptr<ir::Graph> clone = ir::clone_graph(*c.spec.graph);
    ir::fuse_graph(*clone);
    EXPECT_EQ(fused_trace.ops.size(), clone->num_ops())
        << c.name << ": predicted fused node count differs from fuse_graph";

    // Fusion conserves FLOPs and never increases modeled traffic.
    EXPECT_NEAR(fused_trace.total_flops(), trace.total_flops(),
                trace.total_flops() * 1e-9)
        << c.name;
    EXPECT_LE(fused_trace.total_bytes(), trace.total_bytes() * (1 + 1e-9)) << c.name;
  }
}

TEST(WhatifPlan, RejectsTraceFromAnotherGraph) {
  const std::vector<ModelCase> cases = builtin_models();
  const ModelCase& word_lm = cases[0];
  const ModelCase& char_lm = cases[1];
  const sym::Bindings bind = word_lm.spec.bind(word_lm.hidden, 2);
  const whatif::Trace trace =
      whatif::from_report(profile_step(*word_lm.spec.graph, bind));
  // Different graph entirely (op-count mismatch).
  EXPECT_THROW(whatif::plan_fusion_groups(*char_lm.spec.graph, bind, trace),
               std::invalid_argument);
  // Same size, one renamed op.
  whatif::Trace renamed = trace;
  renamed.ops[renamed.ops.size() / 2].name = "not-a-real-op";
  EXPECT_THROW(whatif::plan_fusion_groups(*word_lm.spec.graph, bind, renamed),
               std::invalid_argument);
}

// --- the calibration gate ---------------------------------------------------

struct FusionPrediction {
  double identity_error = 0;
  double predicted = 0;
  double measured = 0;

  double relative_error() const {
    return measured > 0 ? std::fabs(predicted - measured) / measured : 1.0;
  }
};

/// One measure-and-predict round for word_lm: profile unfused and fused
/// steps interleaved in one process (so machine-load drift hits both paths
/// equally), both under the memory plan (so the calibrated surcharge prices
/// dispatch alone), predict the fused span from the unfused profile, and
/// compare against the measured fused span. Structural expectations
/// (non-empty plan, predicted node count == real fused graph) are asserted
/// inside; only the timing comparison is left to the caller.
FusionPrediction predict_wordlm_fusion(const models::ModelSpec& spec,
                                       const sym::Bindings& bind) {
  rt::ExecutorOptions opt;
  opt.schedule = rt::Schedule::kSequential;
  opt.fuse = false;
  opt.memory_plan = true;
  rt::ExecutorOptions fused_opt = opt;
  fused_opt.fuse = true;
  rt::Executor unfused(*spec.graph, bind, opt);
  rt::Executor fused(*spec.graph, bind, fused_opt);
  unfused.run_step();
  unfused.run_step();
  fused.run_step();
  fused.run_step();
  rt::ProfileReport best_u = unfused.run_step();
  rt::ProfileReport best_f = fused.run_step();
  for (int r = 1; r < 5; ++r) {
    const rt::ProfileReport u = unfused.run_step();
    if (u.wall_seconds < best_u.wall_seconds) best_u = u;
    const rt::ProfileReport f = fused.run_step();
    if (f.wall_seconds < best_f.wall_seconds) best_f = f;
  }

  const whatif::Trace trace = whatif::from_report(best_u);
  whatif::ResimOptions resim;
  resim.overhead_seconds_per_op = whatif::calibrate_overhead(trace);
  const double identity = whatif::resimulate(trace, resim).makespan_seconds;

  const auto groups = whatif::plan_fusion_groups(*spec.graph, bind, trace);
  EXPECT_FALSE(groups.empty());
  const whatif::Trace fused_trace = whatif::fuse_groups(trace, groups);
  EXPECT_EQ(fused_trace.ops.size(), best_f.timeline.size());

  FusionPrediction result;
  result.identity_error =
      std::fabs(identity - trace.span_seconds()) / trace.span_seconds();
  result.predicted = whatif::resimulate(fused_trace, resim).makespan_seconds;
  result.measured = whatif::from_report(best_f).span_seconds();
  return result;
}

TEST(WhatifCalibration, PredictsMeasuredFusionWinOnWordLm) {
  // The acceptance bar: from an UNFUSED profile alone, predict the fused
  // step time within 15% of measurement (whatif_bench gates the same bound
  // at larger sizes). The measured side is wall clock, so a background
  // load spike during one profiling round can blow the comparison for
  // reasons the estimator cannot see — retry the whole measure-and-predict
  // round a bounded number of times and gate the best attempt.
  models::WordLmConfig cfg;
  cfg.vocab = 60;
  cfg.seq_length = 6;
  cfg.layers = 2;
  const models::ModelSpec spec = models::build_word_lm(cfg);
  const sym::Bindings bind = spec.bind(8, 2);

  FusionPrediction best;
  double best_error = 2.0;
  for (int attempt = 0; attempt < 3 && best_error > 0.15; ++attempt) {
    const FusionPrediction p = predict_wordlm_fusion(spec, bind);
    if (p.relative_error() < best_error) {
      best = p;
      best_error = p.relative_error();
    }
  }
  EXPECT_LE(best.identity_error, 0.01);
  EXPECT_LE(best_error, 0.15)
      << "predicted fused span " << best.predicted << "s vs measured "
      << best.measured << "s";
}

}  // namespace
}  // namespace gf

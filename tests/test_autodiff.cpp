// Tests of gradient-graph construction: backward ops exist, the classic
// "backprop costs ~2x forward for matrix ops" emerges, and accumulation /
// update wiring is correct.
#include <gtest/gtest.h>

#include "src/ir/footprint.h"
#include "src/ir/gradients.h"
#include "src/ir/graph.h"
#include "src/ir/ops.h"

namespace gf::ir {
namespace {

using sym::Bindings;
using sym::Expr;

/// Small MLP classifier: x(B,D) -> fc1(D,H) -> relu -> fc2(H,C) -> xent.
struct Mlp {
  Graph g{"mlp"};
  Tensor* loss = nullptr;

  Mlp() {
    const Expr b = Expr::symbol("b");
    Tensor* x = g.add_input("x", {b, Expr(8)});
    Tensor* labels = g.add_input("labels", {b}, DataType::kInt32);
    Tensor* w1 = g.add_weight("w1", {Expr(8), Expr(16)});
    Tensor* b1 = g.add_weight("b1", {Expr(16)});
    Tensor* w2 = g.add_weight("w2", {Expr(16), Expr(4)});
    Tensor* h = relu(g, "relu", bias_add(g, "ba", matmul(g, "fc1", x, w1), b1));
    Tensor* logits = matmul(g, "fc2", h, w2);
    auto [per_row, probs] = softmax_xent(g, "xent", logits, labels);
    (void)probs;
    loss = reduce_mean(g, "loss", per_row);
  }
};

TEST(Autodiff, BuildsUpdateForEveryWeight) {
  Mlp m;
  const auto result = build_training_step(m.g, m.loss);
  EXPECT_EQ(result.weight_gradients.size(), 3u);
  std::size_t updates = 0;
  for (const auto& op : m.g.ops())
    if (op->type() == OpType::kApplyGradient) ++updates;
  EXPECT_EQ(updates, 3u);
  EXPECT_NO_THROW(m.g.validate());
}

TEST(Autodiff, MatrixBackpropIsTwiceForward) {
  // Pure matmul chain: each matmul contributes 2x its forward FLOPs in
  // backward (dX and dW — the paper's rule of thumb emerges from graph
  // structure), except the first layer: its dX is a gradient into the
  // batch input, reaches no weight update, and build_training_step
  // prunes it as dead compute.
  Graph g("chain");
  const Expr b = Expr::symbol("b"), h = Expr::symbol("h");
  Tensor* x = g.add_input("x", {b, h});
  Tensor* w1 = g.add_weight("w1", {h, h});
  Tensor* w2 = g.add_weight("w2", {h, h});
  Tensor* labels = g.add_input("labels", {b}, DataType::kInt32);

  Tensor* y = matmul(g, "m2", matmul(g, "m1", x, w1), w2);
  auto [per_row, probs] = softmax_xent(g, "xent", y, labels);
  (void)probs;
  Tensor* loss = reduce_mean(g, "loss", per_row);

  const Bindings bind{{"b", 32}, {"h", 64}};
  double forward_mm = 0.0;
  double m1_fwd = 0.0;
  for (const auto& op : g.ops())
    if (op->type() == OpType::kMatMul) {
      forward_mm += op->flops().eval(bind);
      if (op->name() == "m1") m1_fwd = op->flops().eval(bind);
    }

  build_training_step(g, loss);

  double all_mm = 0.0;
  for (const auto& op : g.ops())
    if (op->type() == OpType::kMatMul) all_mm += op->flops().eval(bind);
  // fwd + 2x fwd in backward, minus the pruned first-layer dX matmul.
  EXPECT_DOUBLE_EQ(all_mm, 3.0 * forward_mm - m1_fwd);
}

TEST(Autodiff, SharedWeightAccumulatesGradients) {
  // The same weight used twice must receive an AddN-accumulated gradient.
  Graph g("shared");
  const Expr b = Expr::symbol("b");
  Tensor* x = g.add_input("x", {b, Expr(8)});
  Tensor* w = g.add_weight("w", {Expr(8), Expr(8)});
  Tensor* labels = g.add_input("labels", {b}, DataType::kInt32);
  Tensor* y = matmul(g, "m2", matmul(g, "m1", x, w), w);
  auto [per_row, probs] = softmax_xent(g, "xent", y, labels);
  (void)probs;
  Tensor* loss = reduce_mean(g, "loss", per_row);

  const auto result = build_training_step(g, loss);
  Tensor* gw = result.weight_gradients.at(w);
  ASSERT_NE(gw->producer(), nullptr);
  EXPECT_EQ(gw->producer()->type(), OpType::kPointwise);  // AddN
  EXPECT_EQ(gw->role(), TensorRole::kWeightGradient);
}

TEST(Autodiff, EmbeddingGradIsDenseTableShaped) {
  Graph g("emb");
  const Expr b = Expr::symbol("b");
  Tensor* table = g.add_weight("table", {Expr(1000), Expr(16)});
  Tensor* ids = g.add_input("ids", {b}, DataType::kInt32);
  Tensor* w = g.add_weight("w", {Expr(16), Expr(4)});
  Tensor* labels = g.add_input("labels", {b}, DataType::kInt32);
  Tensor* logits = matmul(g, "proj", embedding_lookup(g, "emb", table, ids), w);
  auto [per_row, probs] = softmax_xent(g, "xent", logits, labels);
  (void)probs;
  Tensor* loss = reduce_mean(g, "loss", per_row);

  const auto result = build_training_step(g, loss);
  Tensor* gt = result.weight_gradients.at(table);
  EXPECT_TRUE(gt->shape().equals(table->shape()));
  EXPECT_EQ(gt->producer()->type(), OpType::kEmbeddingGrad);
}

TEST(Autodiff, UnreachedWeightGetsNoUpdate) {
  Mlp m;
  m.g.add_weight("orphan", {Expr(10)});
  const auto result = build_training_step(m.g, m.loss);
  EXPECT_EQ(result.weight_gradients.size(), 3u);  // orphan excluded
}

TEST(Autodiff, RejectsNonScalarLoss) {
  Graph g("bad");
  Tensor* x = g.add_input("x", {Expr(4), Expr(4)});
  Tensor* w = g.add_weight("w", {Expr(4), Expr(4)});
  Tensor* y = matmul(g, "mm", x, w);
  EXPECT_THROW(build_training_step(g, y), std::logic_error);
}

TEST(Autodiff, RejectsInputAsLoss) {
  Graph g("bad");
  Tensor* x = g.add_input("x", TensorShape{});
  EXPECT_THROW(build_training_step(g, x), std::logic_error);
}

TEST(Autodiff, TrainingFlopsScaleLinearlyInBatch) {
  Mlp m;
  build_training_step(m.g, m.loss);
  const Expr flops = m.g.total_flops();
  const double f1 = flops.eval({{"b", 1}});
  const double f64 = flops.eval({{"b", 64}});
  // Update ops are batch-independent; everything else is linear in b up to
  // O(1) terms (e.g. the scalar mean), so the relation holds asymptotically.
  double update = 0.0;
  for (const auto& op : m.g.ops())
    if (op->type() == OpType::kApplyGradient) update += op->flops().eval({});
  EXPECT_NEAR(f64 - update, 64.0 * (f1 - update), 1e-3 * f64);
}

TEST(Autodiff, SplitConcatRoundTripDifferentiates) {
  Graph g("splitgrad");
  const Expr b = Expr::symbol("b");
  Tensor* x = g.add_input("x", {b, Expr(8)});
  Tensor* w = g.add_weight("w", {Expr(8), Expr(8)});
  Tensor* labels = g.add_input("labels", {b}, DataType::kInt32);
  Tensor* y = matmul(g, "mm", x, w);
  auto parts = split(g, "sp", y, 1, 2);
  Tensor* back = concat(g, "cat", {parts[0], parts[1]}, 1);
  auto [per_row, probs] = softmax_xent(g, "xent", back, labels);
  (void)probs;
  Tensor* loss = reduce_mean(g, "loss", per_row);
  EXPECT_NO_THROW(build_training_step(g, loss));
  EXPECT_NO_THROW(g.validate());
}

TEST(Footprint, PersistentVsTransientSeparation) {
  Mlp m;
  build_training_step(m.g, m.loss, {.optimizer = Optimizer::kSGD});
  const Bindings bind{{"b", 32}};
  const auto fp = minimal_footprint(m.g, bind);
  // Weights: 8*16 + 16 + 16*4 = 208 params; grads double it.
  EXPECT_DOUBLE_EQ(fp.persistent_bytes, 2.0 * 208 * 4);
  EXPECT_GT(fp.peak_transient_bytes, 0.0);
  EXPECT_DOUBLE_EQ(fp.total_bytes, fp.persistent_bytes + fp.peak_transient_bytes);
}

TEST(Footprint, MomentumAddsSlotBytes) {
  Mlp sgd_model, mom_model;
  build_training_step(sgd_model.g, sgd_model.loss, {.optimizer = Optimizer::kSGD});
  build_training_step(mom_model.g, mom_model.loss, {.optimizer = Optimizer::kMomentum});
  const Bindings bind{{"b", 8}};
  const auto fp_sgd = minimal_footprint(sgd_model.g, bind);
  const auto fp_mom = minimal_footprint(mom_model.g, bind);
  EXPECT_DOUBLE_EQ(fp_mom.persistent_bytes - fp_sgd.persistent_bytes, 208 * 4);
}

TEST(Footprint, GrowsWithBatch) {
  Mlp m;
  build_training_step(m.g, m.loss);
  const auto fp8 = minimal_footprint(m.g, {{"b", 8}});
  const auto fp64 = minimal_footprint(m.g, {{"b", 64}});
  EXPECT_GT(fp64.peak_transient_bytes, fp8.peak_transient_bytes);
  EXPECT_DOUBLE_EQ(fp64.persistent_bytes, fp8.persistent_bytes);
}

TEST(Footprint, BoundedBelowByLargestTensor) {
  Mlp m;
  build_training_step(m.g, m.loss);
  const Bindings bind{{"b", 16}};
  double largest = 0.0;
  for (const auto& t : m.g.tensors())
    largest = std::max(largest, t->bytes().eval(bind));
  const auto fp = minimal_footprint(m.g, bind);
  EXPECT_GE(fp.total_bytes, largest);
}

TEST(Footprint, BoundedAboveBySumOfAllTensors) {
  Mlp m;
  build_training_step(m.g, m.loss);
  const Bindings bind{{"b", 16}};
  double sum = 0.0;
  for (const auto& t : m.g.tensors()) sum += t->bytes().eval(bind);
  const auto fp = minimal_footprint(m.g, bind);
  EXPECT_LE(fp.total_bytes, sum);
}

}  // namespace
}  // namespace gf::ir

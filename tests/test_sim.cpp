// Discrete-event simulator tests: core engine semantics, then exact
// agreement between simulated schedules and the analytic parallelism
// models — the independent verification layer for the §6 results.
#include <gtest/gtest.h>

#include <random>

#include "src/plan/allreduce.h"
#include "src/plan/layer_parallel.h"
#include "src/sim/schedules.h"

namespace gf::sim {
namespace {

TEST(Simulator, SerialTasksOnOneResource) {
  Simulator sim;
  const ResourceId r = sim.add_resource("dev");
  sim.add_task("a", r, 2.0);
  sim.add_task("b", r, 3.0);
  const auto result = sim.run();
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
  EXPECT_DOUBLE_EQ(result.bottleneck_utilization, 1.0);
}

TEST(Simulator, IndependentResourcesRunInParallel) {
  Simulator sim;
  const ResourceId a = sim.add_resource("a");
  const ResourceId b = sim.add_resource("b");
  sim.add_task("ta", a, 4.0);
  sim.add_task("tb", b, 3.0);
  const auto result = sim.run();
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
  EXPECT_DOUBLE_EQ(result.resource_busy_seconds[static_cast<std::size_t>(b)], 3.0);
}

TEST(Simulator, DependenciesChainAcrossResources) {
  Simulator sim;
  const ResourceId a = sim.add_resource("a");
  const ResourceId b = sim.add_resource("b");
  const TaskId first = sim.add_task("first", a, 2.0);
  sim.add_task("second", b, 1.5, {first});
  const auto result = sim.run();
  EXPECT_DOUBLE_EQ(result.tasks[1].start, 2.0);
  EXPECT_DOUBLE_EQ(result.makespan, 3.5);
}

TEST(Simulator, ResourceContentionSerializes) {
  Simulator sim;
  const ResourceId a = sim.add_resource("a");
  const ResourceId b = sim.add_resource("b");
  const TaskId t0 = sim.add_task("t0", a, 1.0);
  const TaskId t1 = sim.add_task("t1", a, 1.0);
  sim.add_task("c0", b, 1.0, {t0});
  sim.add_task("c1", b, 1.0, {t1});
  const auto result = sim.run();
  EXPECT_DOUBLE_EQ(result.makespan, 3.0);  // a: [0,2]; b: [1,3]
}

TEST(Simulator, RejectsBadConstruction) {
  Simulator sim;
  EXPECT_THROW(sim.add_task("x", 0, 1.0), std::invalid_argument);
  const ResourceId r = sim.add_resource("dev");
  EXPECT_THROW(sim.add_task("x", r, -1.0), std::invalid_argument);
  EXPECT_THROW(sim.add_task("x", r, 1.0, {5}), std::invalid_argument);
}

TEST(RingAllreduceSim, MatchesAnalyticExactly) {
  for (int n : {2, 4, 8, 64}) {
    const double bytes = 95.2e9;
    const auto result = simulate_ring_allreduce(n, bytes, 56e9);
    plan::AllReduceModel m;
    m.hop_latency = 0;
    EXPECT_NEAR(result.makespan, plan::ring_allreduce_seconds(m, bytes, n),
                1e-9 * result.makespan)
        << n;
  }
}

TEST(RingAllreduceSim, LatencyTermMatches) {
  const auto result = simulate_ring_allreduce(8, 1e9, 56e9, 1e-4);
  plan::AllReduceModel m;
  m.hop_latency = 1e-4;
  EXPECT_NEAR(result.makespan, plan::ring_allreduce_seconds(m, 1e9, 8), 1e-12);
}

TEST(DataParallelSim, HomogeneousWorkersMatchAnalyticStep) {
  DataParallelSim cfg;
  cfg.worker_compute_seconds.assign(16, 17.2);
  cfg.gradient_bytes = 95.2e9;
  cfg.link_bandwidth = 56e9;
  const auto result = simulate_data_parallel_step(cfg);
  plan::AllReduceModel m;
  m.hop_latency = 0;
  const double analytic = 17.2 + plan::ring_allreduce_seconds(m, cfg.gradient_bytes, 16);
  EXPECT_NEAR(result.makespan, analytic, 1e-9 * analytic);
}

TEST(DataParallelSim, OneStragglerDelaysTheWholeStep) {
  DataParallelSim cfg;
  cfg.worker_compute_seconds.assign(32, 10.0);
  cfg.worker_compute_seconds[7] = 14.0;  // 40% slow worker
  cfg.gradient_bytes = 8e9;
  const auto slow = simulate_data_parallel_step(cfg);
  cfg.worker_compute_seconds[7] = 10.0;
  const auto fast = simulate_data_parallel_step(cfg);
  // Synchronous SGD pays (nearly) the full straggler delay.
  EXPECT_GT(slow.makespan - fast.makespan, 3.5);
}

TEST(PipelineSim, FusedModeMatchesAnalyticBubbleFormula) {
  for (int u : {1, 2, 4, 16}) {
    PipelineSim cfg;
    cfg.stage_seconds.assign(4, 5.0);  // 20s single-device step, 4 stages
    cfg.microbatches = u;
    const auto result = simulate_pipeline(cfg);
    plan::PipelineModel analytic;
    analytic.stages = 4;
    analytic.microbatches = u;
    const auto expected = plan::layer_parallel_step(
        20.0, analytic, {{"a", 1, false}, {"b", 1, false}, {"c", 1, false},
                         {"d", 1, false}});
    EXPECT_NEAR(result.makespan, expected.step_seconds, 1e-9) << u;
  }
}

TEST(PipelineSim, SeparateBackwardWaveMatchesFusedAbstraction) {
  // A non-obvious result the simulator establishes: with balanced stages,
  // scheduling forward (1/3) and backward (2/3) waves separately yields
  // the SAME makespan as the fused (u+k-1)/(k*u) abstraction — the
  // backward fill bubble abuts the forward drain bubble exactly, so the
  // analytic model used by the Table 5 plan is tight, not optimistic.
  PipelineSim cfg;
  cfg.stage_seconds.assign(4, 5.0);
  cfg.microbatches = 2;
  const auto fused = simulate_pipeline(cfg);
  cfg.separate_backward = true;
  const auto separate = simulate_pipeline(cfg);
  EXPECT_NEAR(separate.makespan, fused.makespan, 1e-9);
  // With many microbatches both approach the ideal 5s + epsilon.
  cfg.microbatches = 64;
  const auto many = simulate_pipeline(cfg);
  EXPECT_LT(many.makespan, 6.0);
}

TEST(PipelineSim, ImbalancedStagesGateThroughput) {
  PipelineSim cfg;
  cfg.stage_seconds = {2.0, 8.0, 2.0, 2.0};  // stage 1 dominates
  cfg.microbatches = 32;
  const auto result = simulate_pipeline(cfg);
  // Throughput converges to the slowest stage's per-microbatch time.
  EXPECT_GT(result.makespan, 8.0 * 0.95);
  EXPECT_LT(result.makespan, 8.0 * 1.3);
}

TEST(PipelineSim, BoundaryTransfersAddLatency) {
  PipelineSim cfg;
  cfg.stage_seconds.assign(4, 4.0);
  cfg.microbatches = 2;
  const auto dry = simulate_pipeline(cfg);
  cfg.boundary_bytes = 5.6e9;  // 0.1 s per hop at 56 GB/s
  const auto wet = simulate_pipeline(cfg);
  EXPECT_GT(wet.makespan, dry.makespan + 0.2);
}

TEST(StragglerSweep, SlowdownGrowsWithWorkerCountUnderJitter) {
  // E[max of N] grows with N: the synchronous-SGD scaling tax.
  std::mt19937 rng(11);
  auto step_with_jitter = [&](int n) {
    std::lognormal_distribution<double> dist(0.0, 0.1);
    DataParallelSim cfg;
    cfg.gradient_bytes = 0;  // isolate the compute synchronization effect
    cfg.link_bandwidth = 56e9;
    for (int i = 0; i < n; ++i) cfg.worker_compute_seconds.push_back(10.0 * dist(rng));
    return simulate_data_parallel_step(cfg).makespan;
  };
  const double t8 = step_with_jitter(8);
  const double t512 = step_with_jitter(512);
  EXPECT_GT(t512, t8);
}

}  // namespace
}  // namespace gf::sim

// Wavefront-scheduler battery: bitwise determinism across thread counts and
// schedules, randomized-DAG property checks against the symbolic layer,
// scheduler DAG structure (WAR edges for in-place updates), and
// timeline / Chrome-trace sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/ir/footprint.h"
#include "src/ir/gradients.h"
#include "src/models/models.h"
#include "src/runtime/executor.h"

namespace gf::rt {
namespace {

using ir::Graph;
using ir::Tensor;
using sym::Bindings;
using sym::Expr;

/// Everything a training run produces that must be schedule-independent:
/// per-step losses and profile totals, final weights, arena peak.
struct RunResult {
  std::vector<std::uint32_t> loss_bits;
  std::vector<std::uint32_t> weight_bits;
  double flops = 0;
  double bytes = 0;
  std::size_t peak = 0;
};

RunResult run_training(const ir::Graph& graph, const ir::Tensor* loss,
                       const Bindings& bind, Schedule schedule, std::size_t threads,
                       int steps) {
  conc::ThreadPool pool(threads);
  ExecutorOptions opt;
  opt.pool = &pool;
  opt.schedule = schedule;
  Executor ex(graph, bind, opt);
  ex.retain(loss);

  RunResult result;
  for (int s = 0; s < steps; ++s) {
    const ProfileReport report = ex.run_step();
    result.loss_bits.push_back(std::bit_cast<std::uint32_t>(ex.value(loss).f(0)));
    result.flops += report.total_flops;
    result.bytes += report.total_bytes;
    result.peak = report.peak_allocated_bytes;
  }
  for (const auto& t : graph.tensors()) {
    if (t->role() != ir::TensorRole::kWeight) continue;
    const DenseTensor& w = ex.value(t.get());
    for (std::int64_t i = 0; i < w.numel(); ++i)
      result.weight_bits.push_back(std::bit_cast<std::uint32_t>(w.f(i)));
  }
  return result;
}

void expect_bitwise_equal(const RunResult& a, const RunResult& b,
                          const std::string& label) {
  ASSERT_EQ(a.loss_bits.size(), b.loss_bits.size()) << label;
  for (std::size_t i = 0; i < a.loss_bits.size(); ++i)
    EXPECT_EQ(a.loss_bits[i], b.loss_bits[i]) << label << " loss step " << i;
  ASSERT_EQ(a.weight_bits.size(), b.weight_bits.size()) << label;
  for (std::size_t i = 0; i < a.weight_bits.size(); ++i)
    ASSERT_EQ(a.weight_bits[i], b.weight_bits[i]) << label << " weight elem " << i;
  EXPECT_EQ(a.flops, b.flops) << label;
  EXPECT_EQ(a.bytes, b.bytes) << label;
  EXPECT_EQ(a.peak, b.peak) << label;
}

TEST(WavefrontDeterminism, WordLmBitwiseIdenticalAcrossThreadCounts) {
  models::WordLmConfig cfg;
  cfg.vocab = 40;
  cfg.seq_length = 5;
  cfg.layers = 2;
  const auto spec = models::build_word_lm(cfg);
  const Bindings bind = spec.bind(8, 2);

  const RunResult reference =
      run_training(*spec.graph, spec.loss, bind, Schedule::kSequential, 1, 4);
  for (std::size_t threads : {1u, 2u, 5u}) {
    const RunResult wf =
        run_training(*spec.graph, spec.loss, bind, Schedule::kWavefront, threads, 4);
    expect_bitwise_equal(reference, wf, "wordlm threads=" + std::to_string(threads));
  }
}

TEST(WavefrontDeterminism, ResNetBitwiseIdenticalAcrossThreadCounts) {
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 32;
  cfg.classes = 10;
  const auto spec = models::build_resnet(cfg);
  const Bindings bind = spec.bind(4, 2);

  const RunResult reference =
      run_training(*spec.graph, spec.loss, bind, Schedule::kSequential, 1, 2);
  for (std::size_t threads : {2u, 4u}) {
    const RunResult wf =
        run_training(*spec.graph, spec.loss, bind, Schedule::kWavefront, threads, 2);
    expect_bitwise_equal(reference, wf, "resnet threads=" + std::to_string(threads));
  }
}

TEST(WavefrontDeterminism, RepeatedRunsAreBitwiseIdentical) {
  models::WordLmConfig cfg;
  cfg.vocab = 30;
  cfg.seq_length = 4;
  cfg.layers = 1;
  const auto spec = models::build_word_lm(cfg);
  const Bindings bind = spec.bind(8, 2);
  const RunResult a =
      run_training(*spec.graph, spec.loss, bind, Schedule::kWavefront, 3, 3);
  const RunResult b =
      run_training(*spec.graph, spec.loss, bind, Schedule::kWavefront, 3, 3);
  expect_bitwise_equal(a, b, "repeat");
}

TEST(WavefrontTraining, LossDecreasesUnderParallelSchedule) {
  models::WordLmConfig cfg;
  cfg.vocab = 30;
  cfg.seq_length = 4;
  cfg.layers = 1;
  const auto spec = models::build_word_lm(cfg);
  conc::ThreadPool pool(4);
  ExecutorOptions opt;
  opt.pool = &pool;
  opt.schedule = Schedule::kWavefront;
  opt.learning_rate = 0.5;
  Executor ex(*spec.graph, spec.bind(12, 4), opt);
  ex.retain(spec.loss);
  ex.run_step();
  const float first = ex.value(spec.loss).f(0);
  for (int i = 0; i < 30; ++i) ex.run_step();
  EXPECT_LT(ex.value(spec.loss).f(0), first);
}

// --- randomized DAG schedules -------------------------------------------

/// Builds a random valid training graph: a pool of 2-D activations grown by
/// randomly chosen ops (matmul into fresh weights, bias_add, pointwise,
/// two-input add/mul, concat), closed off with a softmax classifier and a
/// full backward/update pass. Branches that end up unconsumed are left
/// dangling on purpose — the scheduler must free them by liveness.
models::ModelSpec random_training_graph(unsigned seed, int num_random_ops) {
  auto graph = std::make_shared<Graph>("random_" + std::to_string(seed));
  Graph& g = *graph;
  std::mt19937 rng(seed);
  const Expr b = Expr::symbol("batch");
  auto dims = [&](int cols) { return ir::TensorShape{b, Expr(cols)}; };

  std::vector<std::pair<Tensor*, int>> live;  // activation, column count
  live.emplace_back(g.add_input("x", dims(6)), 6);

  auto pick = [&]() -> std::pair<Tensor*, int>& {
    std::uniform_int_distribution<std::size_t> d(0, live.size() - 1);
    return live[d(rng)];
  };

  for (int i = 0; i < num_random_ops; ++i) {
    const std::string suffix = std::to_string(i);
    std::uniform_int_distribution<int> kind_dist(0, 4);
    switch (kind_dist(rng)) {
      case 0: {  // matmul into a fresh weight
        auto& [t, cols] = pick();
        std::uniform_int_distribution<int> width(3, 9);
        const int out_cols = width(rng);
        Tensor* w = g.add_weight("w" + suffix, {Expr(cols), Expr(out_cols)});
        live.emplace_back(ir::matmul(g, "mm" + suffix, t, w), out_cols);
        break;
      }
      case 1: {  // bias_add with a fresh weight
        auto& [t, cols] = pick();
        Tensor* bias = g.add_weight("b" + suffix, {Expr(cols)});
        live.emplace_back(ir::bias_add(g, "ba" + suffix, t, bias), cols);
        break;
      }
      case 2: {  // unary pointwise
        auto& [t, cols] = pick();
        Tensor* out = (i % 2 == 0) ? ir::tanh(g, "pw" + suffix, t)
                                   : ir::relu(g, "pw" + suffix, t);
        live.emplace_back(out, cols);
        break;
      }
      case 3: {  // binary pointwise over equal-width activations
        auto& [t1, cols] = pick();
        Tensor* partner = nullptr;
        for (auto& [t2, c2] : live)
          if (c2 == cols) partner = t2;  // deterministic: last match
        live.emplace_back(ir::add(g, "sum" + suffix, t1, partner), cols);
        break;
      }
      case 4: {  // concat along the feature axis
        auto& [t1, c1] = pick();
        auto& [t2, c2] = pick();
        live.emplace_back(ir::concat(g, "cat" + suffix, {t1, t2}, 1), c1 + c2);
        break;
      }
    }
  }

  const auto& [last, last_cols] = live.back();
  const int classes = 5;
  Tensor* w_out = g.add_weight("w_out", {Expr(last_cols), Expr(classes)});
  Tensor* labels = g.add_input("labels", {b}, ir::DataType::kInt32);
  auto [per_row, probs] =
      ir::softmax_xent(g, "xent", ir::matmul(g, "logits", last, w_out), labels);
  (void)probs;
  Tensor* loss = ir::reduce_mean(g, "loss", per_row);
  ir::build_training_step(g, loss, {});

  models::ModelSpec spec;
  spec.name = g.name();
  spec.graph = graph;
  spec.loss = loss;
  return spec;
}

class RandomDagProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomDagProperty, WavefrontMatchesSymbolicCountsAndFootprintBound) {
  const unsigned seed = GetParam();
  const auto spec = random_training_graph(seed, 14);
  const Bindings bind{{"batch", 3}};

  conc::ThreadPool pool(3);
  ExecutorOptions opt;
  opt.pool = &pool;
  Executor ex(*spec.graph, bind, opt);
  ex.run_step();  // weight-gradient steady state
  const ProfileReport report = ex.run_step();

  // Formulas come from the graph the executor actually ran (the fused
  // clone under GF_FUSE=1, the built graph otherwise).
  const double sym_flops = ex.executing_graph().total_flops().eval(bind);
  const double sym_bytes = ex.executing_graph().total_bytes_accessed().eval(bind);
  EXPECT_NEAR(report.total_flops, sym_flops, 1e-6 * sym_flops) << "seed " << seed;
  EXPECT_NEAR(report.total_bytes, sym_bytes, 1e-6 * sym_bytes) << "seed " << seed;

  // Backpressure invariant: out-of-order retirement must never need more
  // arena than the sequential schedule's analytic footprint. Under an
  // active memory plan the slab replaces backpressure; at these toy sizes
  // 64-byte padding dominates, so allow per-tensor alignment slack.
  const auto fp = ir::minimal_footprint(ex.executing_graph(), bind);
  const MemoryPlan* plan = ex.memory_plan();
  const double slack =
      plan != nullptr ? static_cast<double>(kTensorAlignment * plan->tensors.size()) : 0.0;
  EXPECT_LE(static_cast<double>(report.peak_allocated_bytes), fp.total_bytes + slack)
      << "seed " << seed;
  EXPECT_GT(report.peak_allocated_bytes, 0u);

  // And the whole run must stay schedule-independent.
  const RunResult seq =
      run_training(*spec.graph, spec.loss, bind, Schedule::kSequential, 1, 2);
  const RunResult wf =
      run_training(*spec.graph, spec.loss, bind, Schedule::kWavefront, 3, 2);
  expect_bitwise_equal(seq, wf, "random dag seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

// --- scheduler DAG structure --------------------------------------------

TEST(OpDag, WarEdgesOrderInPlaceUpdatesAfterReaders) {
  // ApplyGradient mutates its weight in place; every other op reading that
  // weight must be a predecessor so the wavefront cannot update too early.
  Graph g("war");
  const Expr b = Expr::symbol("batch");
  Tensor* x = g.add_input("x", {b, Expr(4)});
  Tensor* w = g.add_weight("w", {Expr(4), Expr(3)});
  Tensor* labels = g.add_input("labels", {b}, ir::DataType::kInt32);
  auto [per_row, probs] =
      ir::softmax_xent(g, "xent", ir::matmul(g, "fc", x, w), labels);
  (void)probs;
  ir::build_training_step(g, ir::reduce_mean(g, "loss", per_row), {});

  const ir::OpDag dag = ir::build_op_dag(g);
  ASSERT_EQ(dag.order.size(), g.num_ops());

  std::size_t apply_idx = dag.order.size();
  for (std::size_t i = 0; i < dag.order.size(); ++i)
    if (dag.order[i]->type() == ir::OpType::kApplyGradient) apply_idx = i;
  ASSERT_LT(apply_idx, dag.order.size());
  const ir::Op* apply = dag.order[apply_idx];
  ASSERT_EQ(apply->input(0), w);

  for (std::size_t i = 0; i < dag.order.size(); ++i) {
    const ir::Op* op = dag.order[i];
    if (op == apply) continue;
    bool reads_w = false;
    for (const Tensor* in : op->inputs()) reads_w |= (in == w);
    if (!reads_w) continue;
    const auto& succ = dag.successors[i];
    EXPECT_TRUE(std::find(succ.begin(), succ.end(), apply_idx) != succ.end())
        << "reader " << op->name() << " lacks WAR edge to the weight update";
  }

  // Countdown bookkeeping: at least one source op, and every non-source
  // reachable via someone's successor list.
  std::vector<std::size_t> recomputed(dag.order.size(), 0);
  for (const auto& succ : dag.successors)
    for (std::size_t s : succ) ++recomputed[s];
  EXPECT_EQ(recomputed, dag.predecessor_count);
  EXPECT_NE(std::count(recomputed.begin(), recomputed.end(), 0u), 0);
}

// --- timeline / trace ----------------------------------------------------

TEST(WavefrontTimeline, CoversEveryOpInTopologicalOrder) {
  models::WordLmConfig cfg;
  cfg.vocab = 30;
  cfg.seq_length = 4;
  cfg.layers = 1;
  const auto spec = models::build_word_lm(cfg);
  conc::ThreadPool pool(3);
  ExecutorOptions opt;
  opt.pool = &pool;
  Executor ex(*spec.graph, spec.bind(8, 2), opt);
  const ProfileReport report = ex.run_step();

  ASSERT_EQ(report.timeline.size(), ex.executing_graph().num_ops());
  double flops = 0;
  for (std::size_t i = 0; i < report.timeline.size(); ++i) {
    const TimelineEvent& e = report.timeline[i];
    EXPECT_EQ(e.op_index, i);
    EXPECT_LE(e.start_seconds, e.end_seconds);
    EXPECT_GE(e.worker, 0);  // every op ran on a pool worker
    EXPECT_LT(e.worker, 3);
    flops += e.flops;
  }
  EXPECT_EQ(flops, report.total_flops);  // same fold order: bit-exact
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(SequentialTimeline, RunsEverythingOnCallerThread) {
  models::WordLmConfig cfg;
  cfg.vocab = 30;
  cfg.seq_length = 4;
  cfg.layers = 1;
  const auto spec = models::build_word_lm(cfg);
  ExecutorOptions opt;
  opt.schedule = Schedule::kSequential;
  Executor ex(*spec.graph, spec.bind(8, 2), opt);
  const ProfileReport report = ex.run_step();
  ASSERT_EQ(report.timeline.size(), ex.executing_graph().num_ops());
  for (const TimelineEvent& e : report.timeline) EXPECT_EQ(e.worker, -1);
  // Disjoint op intervals within the step: busy time cannot exceed wall.
  EXPECT_GE(report.wall_seconds, report.total_seconds);
}

TEST(ChromeTrace, EmitsOneDurationEventPerOp) {
  Graph g("trace");
  const Expr b = Expr::symbol("batch");
  Tensor* x = g.add_input("x", {b, Expr(4)});
  Tensor* w = g.add_weight("w", {Expr(4), Expr(3)});
  Tensor* labels = g.add_input("labels", {b}, ir::DataType::kInt32);
  auto [per_row, probs] =
      ir::softmax_xent(g, "xent", ir::matmul(g, "fc\"quoted\"", x, w), labels);
  (void)probs;
  ir::build_training_step(g, ir::reduce_mean(g, "loss", per_row), {});

  Executor ex(g, {{"batch", 2}});
  const ProfileReport report = ex.run_step();

  std::ostringstream os;
  report.write_chrome_trace(os);
  const std::string json = os.str();
  // Header carries the trace-format version so whatif::load_trace can
  // reject drifted exports.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"gfTraceVersion\":" +
                           std::to_string(kGfTraceVersion) + ",\"wallSeconds\":",
                       0),
            0u);

  std::size_t events = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
       ++pos)
    ++events;
  EXPECT_EQ(events, report.timeline.size());
  // Escaping: the op name containing quotes must appear backslash-escaped.
  EXPECT_NE(json.find("fc\\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace gf::rt

// Dataflow subsystem tests: the generic engine (both directions, fixpoint
// termination, malformed-transfer tolerance), the three abstract domains
// (value ranges, definite initialization, liveness), the abstract-shape /
// independent-cost re-derivation — including the headline acceptance
// check that the audited cost model agrees with every op of every model,
// fused and unfused — and the negative paths of the four dataflow-backed
// lint passes (range, deadcode, cost-audit, equiv).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/ir/fusion.h"
#include "src/ir/gradients.h"
#include "src/ir/graph.h"
#include "src/ir/ops.h"
#include "src/models/models.h"
#include "src/verify/dataflow.h"
#include "src/verify/pass.h"

namespace gf::verify {
namespace {

using ir::DataType;
using ir::Graph;
using ir::Op;
using ir::OpType;
using ir::Tensor;
using ir::TensorRole;
using sym::Expr;
using sym::Interval;

/// Small trainable MLP with concrete dims.
struct Mlp {
  Graph g{"mlp"};
  Tensor* x = nullptr;
  Tensor* w1 = nullptr;
  Tensor* loss = nullptr;

  Mlp() {
    x = g.add_input("x", {Expr(4), Expr(8)});
    Tensor* labels = g.add_input("labels", {Expr(4)}, DataType::kInt32);
    w1 = g.add_weight("w1", {Expr(8), Expr(16)});
    Tensor* w2 = g.add_weight("w2", {Expr(16), Expr(4)});
    Tensor* h = ir::relu(g, "relu", ir::matmul(g, "fc1", x, w1));
    Tensor* logits = ir::matmul(g, "fc2", h, w2);
    auto [per_row, probs] = ir::softmax_xent(g, "xent", logits, labels);
    (void)probs;
    loss = ir::reduce_mean(g, "loss", per_row);
  }
};

bool has_error(const std::vector<Diagnostic>& diags, const std::string& pass,
               const std::string& needle) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.severity == Severity::kError && d.pass == pass &&
           (d.message.find(needle) != std::string::npos ||
            d.location.find(needle) != std::string::npos);
  });
}

std::size_t error_count(const std::vector<Diagnostic>& diags) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kError;
      }));
}

// --- engine ----------------------------------------------------------------

TEST(DataflowEngine, RequiredConfigFieldsAreEnforced) {
  Dataflow<bool>::Config cfg;
  cfg.boundary = [](const Tensor&) { return false; };
  cfg.equal = [](bool a, bool b) { return a == b; };
  EXPECT_THROW(Dataflow<bool>{cfg}, std::invalid_argument);  // no transfer
  cfg.transfer = [](const Op& op, const std::vector<bool>&) {
    return std::vector<bool>(op.outputs().size(), true);
  };
  EXPECT_NO_THROW(Dataflow<bool>{cfg});  // forward needs no join
  cfg.direction = Direction::kBackward;
  EXPECT_THROW(Dataflow<bool>{cfg}, std::invalid_argument);  // backward needs join
}

TEST(DataflowEngine, ForwardTaintPropagatesThroughTheGraph) {
  Mlp m;
  Dataflow<bool>::Config cfg;
  cfg.boundary = [&m](const Tensor& t) { return &t == m.x; };
  cfg.transfer = [](const Op& op, const std::vector<bool>& in) {
    const bool any = std::any_of(in.begin(), in.end(), [](bool b) { return b; });
    return std::vector<bool>(op.outputs().size(), any);
  };
  cfg.equal = [](bool a, bool b) { return a == b; };
  const auto facts = Dataflow<bool>(cfg).run(m.g);
  EXPECT_TRUE(facts.at(m.loss));   // x reaches the loss
  EXPECT_FALSE(facts.at(m.w1));    // boundary tensors keep their boundary fact
}

TEST(DataflowEngine, ThrowingTransferLeavesBoundaryFacts) {
  Mlp m;
  Dataflow<int>::Config cfg;
  cfg.boundary = [](const Tensor&) { return 7; };
  cfg.transfer = [](const Op&, const std::vector<int>&) -> std::vector<int> {
    throw std::logic_error("reject every op");
  };
  cfg.equal = [](int a, int b) { return a == b; };
  const auto facts = Dataflow<int>(cfg).run(m.g);
  for (const auto& [t, v] : facts) EXPECT_EQ(v, 7);
}

// --- value ranges ----------------------------------------------------------

TEST(ValueRanges, PointwiseBoundsAreTracked) {
  Graph g{"ranges"};
  Tensor* x = g.add_input("x", {Expr(4), Expr(8)});
  Tensor* s = ir::sigmoid(g, "sig", x);
  Tensor* r = ir::relu(g, "rel", x);
  const auto ranges = compute_value_ranges(g);
  EXPECT_EQ(ranges.at(s).lo, 0.0);
  EXPECT_EQ(ranges.at(s).hi, 1.0);
  EXPECT_FALSE(ranges.at(s).has_special());
  EXPECT_EQ(ranges.at(r).lo, 0.0);
  EXPECT_EQ(ranges.at(r).hi, HUGE_VAL);  // unbounded-finite, not +Inf
  EXPECT_FALSE(ranges.at(r).may_be_pos_inf);
}

TEST(ValueRanges, ScaleMagnifiesConcreteBounds) {
  Graph g{"ranges"};
  Tensor* x = g.add_input("x", {Expr(4)});
  Tensor* s = ir::sigmoid(g, "sig", x);
  Tensor* big = ir::scale(g, "blow", s, Expr(4e38));
  const auto ranges = compute_value_ranges(g);
  EXPECT_EQ(ranges.at(big).lo, 0.0);
  EXPECT_EQ(ranges.at(big).hi, 4e38);  // concrete witness beyond f32
}

// --- definite initialization ------------------------------------------------

TEST(Initialized, TrainingGraphIsFullyInitialized) {
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  const auto init = compute_initialized(m.g);
  for (const auto& [t, ok] : init) EXPECT_TRUE(ok) << t->name();
}

TEST(Initialized, OrphanActivationPoisonsItsConsumers) {
  Mlp m;
  Tensor* orphan =
      m.g.make_tensor("orphan", {Expr(4), Expr(8)}, DataType::kFloat32,
                      TensorRole::kActivation);
  Tensor* y = ir::add(m.g, "poisoned", m.x, orphan);
  const auto init = compute_initialized(m.g);
  EXPECT_FALSE(init.at(orphan));
  EXPECT_FALSE(init.at(y));
  EXPECT_TRUE(init.at(m.x));
}

// --- liveness ---------------------------------------------------------------

TEST(Liveness, DeadChainIsNotLiveButLossPathIs) {
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  Tensor* wasted = ir::tanh(m.g, "wasted", m.x);  // consumed by nothing
  const auto live = compute_liveness(m.g);
  EXPECT_FALSE(live.at(wasted));
  EXPECT_TRUE(live.at(m.loss));
  EXPECT_TRUE(live.at(m.x));
}

TEST(Liveness, MarkedOutputAnchorsDemand) {
  Graph g{"fwd"};
  Tensor* x = g.add_input("x", {Expr(4)});
  Tensor* kept = ir::relu(g, "kept", x);
  Tensor* dropped = ir::tanh(g, "dropped", x);
  g.mark_output(kept);
  const auto live = compute_liveness(g);
  EXPECT_TRUE(live.at(kept));
  EXPECT_FALSE(live.at(dropped));
}

// --- abstract shapes / independent cost -------------------------------------

TEST(Shapes, MatMulOutputIsRederivedNotCopied) {
  Mlp m;
  const auto shapes = compute_shapes(m.g);
  const Op* fc1 = nullptr;
  for (const auto& op : m.g.ops())
    if (std::string(op->name()) == "fc1") fc1 = op.get();
  ASSERT_NE(fc1, nullptr);
  const AbstractShape& out = shapes.at(fc1->output(0));
  EXPECT_TRUE(out.derived);
  EXPECT_TRUE(out.shape.equals(fc1->output(0)->shape()));
}

TEST(Shapes, ReshapeFallsBackToRecordedShape) {
  Graph g{"shapes"};
  Tensor* x = g.add_input("x", {Expr(4), Expr(8)});
  Tensor* y = ir::reshape(g, "flat", x, ir::TensorShape{{Expr(32)}});
  const auto shapes = compute_shapes(g);
  EXPECT_FALSE(shapes.at(y).derived);
  EXPECT_TRUE(shapes.at(y).shape.equals(y->shape()));
}

// The acceptance bar for the audit: the independent cost model re-derives
// a cost for EVERY op of every model — fused and unfused — and agrees
// with the claimed formulas exactly (Expr::equals after simplification).
TEST(CostAudit, RederivesEveryOpOfEveryModelWithZeroMismatches) {
  for (const bool fuse : {false, true}) {
    auto specs = models::build_all_domains();
    specs.push_back(models::build_transformer_lm());
    for (const auto& spec : specs) {
      if (fuse) ir::fuse_graph(*spec.graph);
      const auto shapes = compute_shapes(*spec.graph);
      for (const auto& op : spec.graph->ops()) {
        const auto derived = derive_op_cost(*op, shapes);
        ASSERT_TRUE(derived.has_value())
            << spec.name << (fuse ? " (fused)" : "") << ": no derivation for op '"
            << op->name() << "'";
        EXPECT_TRUE(op->flops().equals(derived->flops))
            << spec.name << (fuse ? " (fused)" : "") << ": op '" << op->name()
            << "' claims FLOPs " << op->flops().str() << " but audit derived "
            << derived->flops.str();
        EXPECT_TRUE(op->bytes_accessed().equals(derived->bytes))
            << spec.name << (fuse ? " (fused)" : "") << ": op '" << op->name()
            << "' claims bytes " << op->bytes_accessed().str()
            << " but audit derived " << derived->bytes.str();
      }
    }
  }
}

// Zero false positives: the four dataflow-backed passes stay silent on
// every model, fused and unfused.
TEST(DataflowPasses, CleanOnEveryModelFusedAndUnfused) {
  const VerifyOptions opts{.passes = {"range", "deadcode", "cost-audit", "equiv"}};
  for (const bool fuse : {false, true}) {
    auto specs = models::build_all_domains();
    specs.push_back(models::build_transformer_lm());
    for (const auto& spec : specs) {
      if (fuse) ir::fuse_graph(*spec.graph);
      const VerifyResult r = verify_graph(*spec.graph, opts);
      EXPECT_EQ(r.count(Severity::kError), 0u)
          << spec.name << (fuse ? " (fused)" : "");
      EXPECT_EQ(r.count(Severity::kWarning), 0u)
          << spec.name << (fuse ? " (fused)" : "");
    }
  }
}

// --- range pass -------------------------------------------------------------

TEST(RangePass, FlagsProvenDtypeOverflow) {
  Graph g{"overflow"};
  Tensor* x = g.add_input("x", {Expr(4)});
  Tensor* s = ir::sigmoid(g, "sig", x);
  Tensor* big = ir::scale(g, "blow", s, Expr(4e38));
  g.mark_output(big);
  const VerifyResult r = verify_graph(g, {.passes = {"range"}});
  EXPECT_TRUE(has_error(r.diagnostics, "range", "proven overflow"));
  // Exactly one finding: the op that introduces the overflow, not the
  // whole downstream cascade.
  EXPECT_EQ(error_count(r.diagnostics), 1u);
}

TEST(RangePass, FlagsScaleCoefficientThatCanBlowUp) {
  Graph g{"alpha"};
  Tensor* x = g.add_input("x", {Expr(4)});
  // 1 / (h - b): both symbols are positive reals, so the denominator
  // admits zero and the coefficient admits +/-Inf.
  Tensor* y = ir::scale(g, "unstable", x,
                        Expr(1.0) / (Expr::symbol("h") - Expr::symbol("b")));
  g.mark_output(y);
  const VerifyResult r = verify_graph(g, {.passes = {"range"}});
  EXPECT_TRUE(has_error(r.diagnostics, "range", "scale coefficient"));
}

TEST(RangePass, FlagsSoftmaxOverPoisonedLogits) {
  Graph g{"poison"};
  Tensor* x = g.add_input("x", {Expr(4), Expr(8)});
  Tensor* bad = ir::scale(g, "div0", x,
                          Expr(1.0) / (Expr::symbol("h") - Expr::symbol("b")));
  Tensor* p = ir::softmax(g, "sm", bad);
  g.mark_output(p);
  const VerifyResult r = verify_graph(g, {.passes = {"range"}});
  EXPECT_TRUE(has_error(r.diagnostics, "range", "softmax max-subtraction"));
}

// --- deadcode pass ----------------------------------------------------------

TEST(DeadCodePass, FlagsOpsThatReachNoSink) {
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  ir::tanh(m.g, "wasted", m.x);
  const VerifyResult r = verify_graph(m.g, {.passes = {"deadcode"}});
  EXPECT_TRUE(has_error(r.diagnostics, "deadcode", "wasted"));
  EXPECT_EQ(error_count(r.diagnostics), 1u);
}

TEST(DeadCodePass, SilentWhenGraphHasNoSinksAtAll) {
  Graph g{"fwd"};
  Tensor* x = g.add_input("x", {Expr(4)});
  ir::relu(g, "r", x);  // forward-only graph, nothing marked
  const VerifyResult r = verify_graph(g, {.passes = {"deadcode"}});
  EXPECT_EQ(error_count(r.diagnostics), 0u);
}

TEST(DeadCodePass, MarkingTheResultSilencesTheFinding) {
  Graph g{"fwd"};
  Tensor* x = g.add_input("x", {Expr(4)});
  Tensor* kept = ir::relu(g, "kept", x);
  Tensor* inference = ir::tanh(g, "inference", kept);
  g.mark_output(inference);
  const VerifyResult r = verify_graph(g, {.passes = {"deadcode"}});
  EXPECT_EQ(error_count(r.diagnostics), 0u);
}

// --- cost-audit pass --------------------------------------------------------

TEST(CostAuditPass, FlagsTamperedOperandShape) {
  // MatMul caches its GEMM dims at construction; retroactively growing an
  // operand makes the cached claim disagree with the audit's re-derivation.
  Mlp m;
  m.x->set_shape({Expr(4), Expr(9)});
  const VerifyResult r = verify_graph(m.g, {.passes = {"cost-audit"}});
  EXPECT_TRUE(has_error(r.diagnostics, "cost-audit", "claimed FLOPs"));
}

TEST(CostAuditPass, FlagsSliceOverrun) {
  Graph g{"slice"};
  Tensor* x = g.add_input("x", {Expr(4), Expr(8)});
  auto* sl = g.add_op<ir::SliceOp>("overrun", x, 1, Expr(6.0), Expr(4.0));
  g.mark_output(sl->output(0));
  const VerifyResult r = verify_graph(g, {.passes = {"cost-audit"}});
  EXPECT_TRUE(has_error(r.diagnostics, "cost-audit", "slice overruns"));
}

TEST(CostAuditPass, InBoundsSliceIsClean) {
  Graph g{"slice"};
  Tensor* x = g.add_input("x", {Expr(4), Expr(8)});
  auto* sl = g.add_op<ir::SliceOp>("ok", x, 1, Expr(4.0), Expr(4.0));
  g.mark_output(sl->output(0));
  const VerifyResult r = verify_graph(g, {.passes = {"cost-audit"}});
  EXPECT_EQ(error_count(r.diagnostics), 0u);
}

// --- equiv pass -------------------------------------------------------------

/// Pointwise chain that the fusion rewrite collapses into one
/// FusedPointwiseOp (with a minted certificate).
Graph make_fusible_graph() {
  Graph g{"fusible"};
  Tensor* x = g.add_input("x", {Expr(4), Expr(8)});
  Tensor* y = g.add_input("y", {Expr(4), Expr(8)});
  Tensor* s = ir::sigmoid(g, "sig", x);
  Tensor* t = ir::mul(g, "gate", s, y);
  Tensor* u = ir::one_minus(g, "flip", t);
  g.mark_output(u);
  return g;
}

TEST(EquivPass, FusionCertificatesValidate) {
  Graph g = make_fusible_graph();
  const auto result = ir::fuse_graph(g);
  ASSERT_GE(result.pointwise_groups, 1u);
  const VerifyResult r = verify_graph(g, {.passes = {"equiv"}});
  EXPECT_EQ(error_count(r.diagnostics), 0u);
  bool saw_cert = false;
  for (const auto& op : g.ops())
    if (op->type() == OpType::kFusedPointwise)
      saw_cert = saw_cert ||
                 !static_cast<const ir::FusedPointwiseOp&>(*op).certificate().empty();
  EXPECT_TRUE(saw_cert);
}

TEST(EquivPass, FlagsTamperedCertificate) {
  Graph g = make_fusible_graph();
  ir::fuse_graph(g);
  ir::FusedPointwiseOp* fused = nullptr;
  for (const auto& op : g.ops())
    if (op->type() == OpType::kFusedPointwise)
      fused = static_cast<ir::FusedPointwiseOp*>(op.get());
  ASSERT_NE(fused, nullptr);
  ASSERT_FALSE(fused->certificate().empty());
  fused->set_certificate("(tampered)");
  const VerifyResult r = verify_graph(g, {.passes = {"equiv"}});
  EXPECT_TRUE(has_error(r.diagnostics, "equiv", "rewrite certificate"));
}

// --- deterministic report order (satellite) ---------------------------------

TEST(VerifyEngine, DiagnosticsAreSortedDeterministically) {
  Mlp m;
  ir::build_training_step(m.g, m.loss);
  ir::tanh(m.g, "wasted_b", m.x);
  ir::tanh(m.g, "wasted_a", m.x);
  const VerifyResult r = verify_graph(m.g);
  // Grouped by pass in run order, then ordered by location within a pass.
  std::vector<std::size_t> ranks;
  for (const Diagnostic& d : r.diagnostics) {
    const auto it = std::find(r.passes_run.begin(), r.passes_run.end(), d.pass);
    ranks.push_back(static_cast<std::size_t>(it - r.passes_run.begin()));
  }
  EXPECT_TRUE(std::is_sorted(ranks.begin(), ranks.end()));
  for (std::size_t i = 1; i < r.diagnostics.size(); ++i)
    if (ranks[i] == ranks[i - 1])
      EXPECT_LE(r.diagnostics[i - 1].location, r.diagnostics[i].location);
  // And two runs agree byte-for-byte.
  const VerifyResult r2 = verify_graph(m.g);
  ASSERT_EQ(r.diagnostics.size(), r2.diagnostics.size());
  for (std::size_t i = 0; i < r.diagnostics.size(); ++i)
    EXPECT_EQ(r.diagnostics[i].str(), r2.diagnostics[i].str());
}

}  // namespace
}  // namespace gf::verify

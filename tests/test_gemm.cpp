// Blocked-GEMM core and parallel-kernel determinism tests.
//
// The contract under test: the cache-blocked packed GEMM (and every kernel
// re-expressed on top of it or parallelized over the pool) produces output
// bits that are independent of thread count, and — for the GEMM itself —
// identical to the retained reference kernel, because both accumulate
// fl(a*b) into a double per output element in ascending-k order.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/hw/cache_model.h"
#include "src/ir/graph.h"
#include "src/ir/ops.h"
#include "src/runtime/gemm.h"
#include "src/runtime/kernels.h"

namespace gf::rt {
namespace {

conc::ThreadPool& pool() {
  static conc::ThreadPool p(4);
  return p;
}

std::vector<float> random_vec(std::size_t n, std::uint32_t seed) {
  // xorshift32: deterministic values in [-1, 1) without <random> overhead.
  std::vector<float> v(n);
  std::uint32_t s = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    v[i] = static_cast<float>(s % 20011u) / 10005.5f - 1.0f;
  }
  return v;
}

std::vector<std::uint32_t> bits_of(const std::vector<float>& v) {
  std::vector<std::uint32_t> b(v.size());
  std::memcpy(b.data(), v.data(), v.size() * sizeof(float));
  return b;
}

DenseTensor tensor_from(std::vector<std::int64_t> shape, const std::vector<float>& data) {
  DenseTensor t(std::move(shape), ir::DataType::kFloat32);
  for (std::size_t i = 0; i < data.size(); ++i)
    t.f(static_cast<std::int64_t>(i)) = data[i];
  return t;
}

struct GemmCase {
  std::int64_t batch, m, n, k;
  bool trans_a, trans_b;
  bool broadcast_b;  // rank-3 A with a shared rank-2 B
};

void run_case(const GemmCase& gc) {
  SCOPED_TRACE(testing::Message()
               << "batch=" << gc.batch << " m=" << gc.m << " n=" << gc.n
               << " k=" << gc.k << " ta=" << gc.trans_a << " tb=" << gc.trans_b
               << " bcast=" << gc.broadcast_b);
  const auto a_elems = static_cast<std::size_t>(gc.batch * gc.m * gc.k);
  const auto b_batch = gc.broadcast_b ? 1 : gc.batch;
  const auto b_elems = static_cast<std::size_t>(b_batch * gc.k * gc.n);
  const auto c_elems = static_cast<std::size_t>(gc.batch * gc.m * gc.n);
  const std::vector<float> a = random_vec(a_elems, 11);
  const std::vector<float> b = random_vec(b_elems, 23);
  std::vector<float> c_blocked(c_elems, -7.0f), c_ref(c_elems, 7.0f);

  const std::int64_t a_stride = gc.m * gc.k;
  const std::int64_t b_stride = gc.broadcast_b ? 0 : gc.k * gc.n;
  const std::int64_t c_stride = gc.m * gc.n;
  blocked_gemm(a.data(), b.data(), c_blocked.data(), gc.batch, gc.m, gc.n, gc.k,
               gc.trans_a, gc.trans_b, a_stride, b_stride, c_stride,
               default_gemm_tiling(), pool());
  reference_gemm(a.data(), b.data(), c_ref.data(), gc.batch, gc.m, gc.n, gc.k,
                 gc.trans_a, gc.trans_b, a_stride, b_stride, c_stride, pool());
  EXPECT_EQ(bits_of(c_blocked), bits_of(c_ref));
}

TEST(BlockedGemm, MatchesReferenceBitwiseRank2) {
  // Odd, non-tile-multiple shapes so every edge path (partial micro-tile,
  // partial KC block) is exercised in all four transpose combinations.
  for (bool ta : {false, true})
    for (bool tb : {false, true}) run_case({1, 67, 35, 129, ta, tb, false});
}

TEST(BlockedGemm, MatchesReferenceBitwiseBatched) {
  for (bool ta : {false, true})
    for (bool tb : {false, true}) run_case({3, 17, 29, 41, ta, tb, false});
}

TEST(BlockedGemm, MatchesReferenceBitwiseBroadcastB) {
  for (bool ta : {false, true})
    for (bool tb : {false, true}) run_case({4, 13, 19, 23, ta, tb, true});
}

TEST(BlockedGemm, MatchesReferenceBitwiseTinyAndAlignedShapes) {
  run_case({1, 1, 1, 1, false, false, false});
  run_case({1, 4, 8, 16, false, false, false});     // exact micro-tiles
  run_case({1, 128, 128, 128, false, true, false});  // exact-ish macro fit
  run_case({2, 5, 3, 2, true, false, false});
}

TEST(BlockedGemm, BitwiseIdenticalAcrossThreadCounts) {
  const std::int64_t m = 151, n = 93, k = 77;
  const std::vector<float> a = random_vec(static_cast<std::size_t>(m * k), 5);
  const std::vector<float> b = random_vec(static_cast<std::size_t>(k * n), 9);
  std::vector<std::vector<std::uint32_t>> runs;
  for (int threads : {1, 2, 8}) {
    conc::ThreadPool tp(threads);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    blocked_gemm(a.data(), b.data(), c.data(), 1, m, n, k, false, false, 0, 0, 0,
                 default_gemm_tiling(), tp);
    runs.push_back(bits_of(c));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(GemmTiling, FollowsPaperTileRule) {
  // T = floor(sqrt(cache / (3 * dtype))) — the same rule as
  // hw::tiled_matmul_bytes; MC/NC round down to micro-tile multiples.
  const GemmTiling t = select_gemm_tiling(256.0 * 1024.0, 4);
  const auto edge = static_cast<std::int64_t>(std::floor(std::sqrt(256.0 * 1024.0 / 12.0)));
  EXPECT_EQ(t.kc, edge);
  EXPECT_EQ(t.mc, edge / kGemmMr * kGemmMr);
  EXPECT_EQ(t.nc, edge / kGemmNr * kGemmNr);
  EXPECT_GT(t.mc, 0);
  EXPECT_GT(t.nc, 0);

  // Degenerate cache still yields a usable (micro-tile) blocking.
  const GemmTiling tiny = select_gemm_tiling(16.0, 4);
  EXPECT_EQ(tiny.mc, kGemmMr);
  EXPECT_EQ(tiny.nc, kGemmNr);
  EXPECT_GE(tiny.kc, 1);
}

TEST(GemmTraffic, GrowsOncePanelsExceedModeledCache) {
  // With a fixed tiling, measured packed traffic per FLOP should grow once
  // the matrices outgrow a single macro-tile — the qualitative trend
  // hw::tiled_matmul_bytes predicts (ceil(N/T) re-reads of A, etc.).
  const GemmTiling small = select_gemm_tiling(8.0 * 1024.0, 4);  // T ~= 26
  auto traffic_per_elem = [&](std::int64_t edge) {
    const auto elems = static_cast<std::size_t>(edge * edge);
    const std::vector<float> a = random_vec(elems, 3);
    const std::vector<float> b = random_vec(elems, 7);
    std::vector<float> c(elems, 0.0f);
    GemmTraffic t;
    blocked_gemm(a.data(), b.data(), c.data(), 1, edge, edge, edge, false, false,
                 0, 0, 0, small, pool(), &t);
    // Normalize by the compulsory volume (3 matrices) to get a re-read factor.
    return t.total() / (3.0 * static_cast<double>(elems) * sizeof(float));
  };
  const double in_cache = traffic_per_elem(24);    // fits one macro-tile
  const double out_of_cache = traffic_per_elem(96);  // 4x4 tile grid
  EXPECT_GT(out_of_cache, 1.5 * in_cache);

  // And the model agrees about the direction of the trend.
  const double model_small = hw::tiled_matmul_bytes(24, 24, 24, 1, 4, 8.0 * 1024.0) /
                             (3.0 * 24.0 * 24.0 * 4.0);
  const double model_large = hw::tiled_matmul_bytes(96, 96, 96, 1, 4, 8.0 * 1024.0) /
                             (3.0 * 96.0 * 96.0 * 4.0);
  EXPECT_GT(model_large, model_small);
}

// --- KernelStats byte accounting pinned to the IR's algorithmic bytes ------

double ir_matmul_bytes(std::vector<std::int64_t> a_shape,
                       std::vector<std::int64_t> b_shape) {
  ir::Graph g("bytes");
  std::vector<sym::Expr> ae, be;
  for (auto d : a_shape) ae.emplace_back(static_cast<double>(d));
  for (auto d : b_shape) be.emplace_back(static_cast<double>(d));
  ir::Tensor* a = g.add_input("a", ir::TensorShape(ae));
  ir::Tensor* b = g.add_weight("b", ir::TensorShape(be));
  ir::Tensor* y = ir::matmul(g, "mm", a, b);
  return y->producer()->bytes_accessed().eval({});
}

void expect_matmul_stats_match(std::vector<std::int64_t> a_shape,
                               std::vector<std::int64_t> b_shape,
                               std::vector<std::int64_t> out_shape) {
  DenseTensor a(a_shape, ir::DataType::kFloat32);
  DenseTensor b(b_shape, ir::DataType::kFloat32);
  DenseTensor out(out_shape, ir::DataType::kFloat32);
  KernelStats stats;
  matmul(a, b, out, false, false, pool(), stats);
  EXPECT_DOUBLE_EQ(stats.bytes, ir_matmul_bytes(a_shape, b_shape));
}

TEST(MatmulStats, BytesMatchSymbolicRank2) {
  expect_matmul_stats_match({6, 10}, {10, 14}, {6, 14});
}

TEST(MatmulStats, BytesMatchSymbolicBatched) {
  expect_matmul_stats_match({3, 6, 10}, {3, 10, 14}, {3, 6, 14});
}

TEST(MatmulStats, BytesMatchSymbolicBroadcastB) {
  // The broadcast case the accounting documents: shared rank-2 B under a
  // rank-3 A is charged once, not once per batch.
  expect_matmul_stats_match({5, 6, 10}, {10, 14}, {5, 6, 14});
  DenseTensor a({5, 6, 10}, ir::DataType::kFloat32);
  DenseTensor b({10, 14}, ir::DataType::kFloat32);
  DenseTensor out({5, 6, 14}, ir::DataType::kFloat32);
  KernelStats stats;
  matmul(a, b, out, false, false, pool(), stats);
  const double dtype = 4.0;
  EXPECT_DOUBLE_EQ(stats.bytes, dtype * (5 * 6 * 10 + 10 * 14 + 5 * 6 * 14));
}

// --- alignment -------------------------------------------------------------

TEST(Alignment, DenseTensorBuffersAre64ByteAligned) {
  for (std::int64_t n : {1, 3, 17, 1000}) {
    DenseTensor f({n}, ir::DataType::kFloat32);
    DenseTensor i({n}, ir::DataType::kInt32);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f.fdata()) % kTensorAlignment, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i.idata()) % kTensorAlignment, 0u);
  }
}

TEST(Alignment, AlignedVectorIsAligned) {
  AlignedVector<float> v(7);
  AlignedVector<double> d(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kTensorAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % kTensorAlignment, 0u);
}

// --- conv lowering vs reference -------------------------------------------

TEST(ConvBlocked, ForwardMatchesReferenceBitwise) {
  // im2col orders taps (kh, kw, c) ascending with explicit zeros for
  // padding — the identical accumulation chain to the reference loops, so
  // the forward lowering is bit-exact.
  const std::vector<std::int64_t> in_shape{2, 9, 7, 3}, f_shape{3, 3, 3, 5};
  DenseTensor in = tensor_from(in_shape, random_vec(2 * 9 * 7 * 3, 31));
  DenseTensor f = tensor_from(f_shape, random_vec(3 * 3 * 3 * 5, 37));
  DenseTensor out({2, 9, 7, 5}, ir::DataType::kFloat32);
  DenseTensor out_ref({2, 9, 7, 5}, ir::DataType::kFloat32);
  KernelStats s1, s2;
  set_kernel_backend(KernelBackend::kBlocked);
  conv2d(in, f, out, 1, pool(), s1);
  conv2d_reference(in, f, out_ref, 1, s2);
  for (std::int64_t i = 0; i < out.numel(); ++i)
    ASSERT_EQ(bits_of({out.f(i)}), bits_of({out_ref.f(i)})) << i;
  EXPECT_DOUBLE_EQ(s1.flops, s2.flops);
  EXPECT_DOUBLE_EQ(s1.bytes, s2.bytes);
}

TEST(ConvBlocked, GradientsMatchReferenceNumerically) {
  // The GEMM-lowered gradients accumulate in a different (associativity)
  // order than the reference scatter loops, so equality is numeric.
  const std::vector<std::int64_t> in_shape{1, 6, 6, 2}, f_shape{3, 3, 2, 4};
  DenseTensor in = tensor_from(in_shape, random_vec(6 * 6 * 2, 41));
  DenseTensor f = tensor_from(f_shape, random_vec(3 * 3 * 2 * 4, 43));
  DenseTensor dy = tensor_from({1, 6, 6, 4}, random_vec(6 * 6 * 4, 47));

  DenseTensor dx({1, 6, 6, 2}, ir::DataType::kFloat32);
  DenseTensor dx_ref({1, 6, 6, 2}, ir::DataType::kFloat32);
  DenseTensor df({3, 3, 2, 4}, ir::DataType::kFloat32);
  DenseTensor df_ref({3, 3, 2, 4}, ir::DataType::kFloat32);
  KernelStats s;
  set_kernel_backend(KernelBackend::kBlocked);
  conv2d_grad_input(dy, f, dx, 1, pool(), s);
  conv2d_grad_input_reference(dy, f, dx_ref, 1, s);
  conv2d_grad_filter(in, dy, df, 1, pool(), s);
  conv2d_grad_filter_reference(in, dy, df_ref, 1, s);
  for (std::int64_t i = 0; i < dx.numel(); ++i)
    EXPECT_NEAR(dx.f(i), dx_ref.f(i), 1e-4f) << i;
  for (std::int64_t i = 0; i < df.numel(); ++i)
    EXPECT_NEAR(df.f(i), df_ref.f(i), 1e-3f) << i;
}

TEST(ConvBlocked, GradientsBitwiseIdenticalAcrossThreadCounts) {
  DenseTensor in = tensor_from({2, 5, 5, 3}, random_vec(2 * 5 * 5 * 3, 53));
  DenseTensor f = tensor_from({3, 3, 3, 4}, random_vec(3 * 3 * 3 * 4, 59));
  DenseTensor dy = tensor_from({2, 5, 5, 4}, random_vec(2 * 5 * 5 * 4, 61));
  std::vector<std::vector<std::uint32_t>> dx_runs, df_runs;
  for (int threads : {1, 2, 8}) {
    conc::ThreadPool tp(threads);
    DenseTensor dx({2, 5, 5, 3}, ir::DataType::kFloat32);
    DenseTensor df({3, 3, 3, 4}, ir::DataType::kFloat32);
    KernelStats s;
    conv2d_grad_input(dy, f, dx, 1, tp, s);
    conv2d_grad_filter(in, dy, df, 1, tp, s);
    std::vector<float> dxv(dx.fdata(), dx.fdata() + dx.numel());
    std::vector<float> dfv(df.fdata(), df.fdata() + df.numel());
    dx_runs.push_back(bits_of(dxv));
    df_runs.push_back(bits_of(dfv));
  }
  EXPECT_EQ(dx_runs[0], dx_runs[1]);
  EXPECT_EQ(dx_runs[0], dx_runs[2]);
  EXPECT_EQ(df_runs[0], df_runs[1]);
  EXPECT_EQ(df_runs[0], df_runs[2]);
}

// --- parallelized serial kernels stay deterministic ------------------------

TEST(ParallelKernels, EmbeddingSoftmaxReduceBitwiseAcrossThreadCounts) {
  const std::int64_t rows = 200, vocab = 37, embed = 50;
  DenseTensor table = tensor_from({vocab, embed},
                                  random_vec(static_cast<std::size_t>(vocab * embed), 71));
  DenseTensor ids({rows}, ir::DataType::kInt32);
  for (std::int64_t r = 0; r < rows; ++r) ids.i32(r) = static_cast<std::int32_t>((r * 7) % vocab);
  DenseTensor dy = tensor_from({rows, embed},
                               random_vec(static_cast<std::size_t>(rows * embed), 73));
  DenseTensor logits = tensor_from({rows, embed},
                                   random_vec(static_cast<std::size_t>(rows * embed), 79));

  std::vector<std::vector<std::uint32_t>> runs;
  for (int threads : {1, 8}) {
    conc::ThreadPool tp(threads);
    KernelStats s;
    DenseTensor looked({rows, embed}, ir::DataType::kFloat32);
    DenseTensor dtable({vocab, embed}, ir::DataType::kFloat32);
    DenseTensor soft({rows, embed}, ir::DataType::kFloat32);
    DenseTensor red({embed}, ir::DataType::kFloat32);
    embedding_lookup(table, ids, looked, tp, s);
    embedding_grad(ids, dy, dtable, tp, s);
    softmax(logits, soft, tp, s);
    reduce(ir::ReduceKind::kMean, dy, red, tp, s);
    std::vector<float> all;
    all.insert(all.end(), looked.fdata(), looked.fdata() + looked.numel());
    all.insert(all.end(), dtable.fdata(), dtable.fdata() + dtable.numel());
    all.insert(all.end(), soft.fdata(), soft.fdata() + soft.numel());
    all.insert(all.end(), red.fdata(), red.fdata() + red.numel());
    runs.push_back(bits_of(all));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(KernelBackendSwitch, ReferenceBackendRunsSeedKernels) {
  DenseTensor in = tensor_from({1, 4, 4, 2}, random_vec(4 * 4 * 2, 83));
  DenseTensor f = tensor_from({3, 3, 2, 3}, random_vec(3 * 3 * 2 * 3, 89));
  DenseTensor out_b({1, 4, 4, 3}, ir::DataType::kFloat32);
  DenseTensor out_r({1, 4, 4, 3}, ir::DataType::kFloat32);
  KernelStats s;
  set_kernel_backend(KernelBackend::kBlocked);
  conv2d(in, f, out_b, 1, pool(), s);
  set_kernel_backend(KernelBackend::kReference);
  conv2d(in, f, out_r, 1, pool(), s);
  set_kernel_backend(KernelBackend::kBlocked);
  for (std::int64_t i = 0; i < out_b.numel(); ++i)
    EXPECT_EQ(bits_of({out_b.f(i)}), bits_of({out_r.f(i)})) << i;
}

}  // namespace
}  // namespace gf::rt

// Seeded-defect corpus: every file under tests/data/lint/ is a serialized
// graph carrying exactly one planted defect, named <pass>__<defect>.txt
// after the lint pass that must catch it. Two contracts per file:
//
//   1. `gfctl lint --file <f>` exits 2 (error-severity findings) — the
//      exit-code contract CI's lint gate relies on.
//   2. In-process, every error-severity diagnostic comes from the
//      intended pass and no other — each defect is caught by exactly the
//      analysis built to catch it, not by collateral damage in another.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/verify/pass.h"

namespace gf::verify {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  const fs::path dir = fs::path(GF_TEST_DATA_DIR) / "lint";
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".txt") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::string intended_pass(const fs::path& file) {
  const std::string stem = file.stem().string();
  const std::size_t sep = stem.find("__");
  return sep == std::string::npos ? stem : stem.substr(0, sep);
}

TEST(LintCorpus, CoversAllFourDataflowPasses) {
  const auto files = corpus_files();
  EXPECT_GE(files.size(), 8u);
  std::set<std::string> passes;
  for (const auto& f : files) passes.insert(intended_pass(f));
  for (const char* p : {"range", "deadcode", "cost-audit", "equiv"})
    EXPECT_TRUE(passes.count(p)) << "no corpus file seeds a '" << p << "' defect";
}

TEST(LintCorpus, GfctlExitsTwoOnEveryDefect) {
  for (const auto& file : corpus_files()) {
    const std::string cmd = std::string(GF_GFCTL_PATH) + " lint --file " +
                            file.string() + " --json > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(status)) << file.filename();
    EXPECT_EQ(WEXITSTATUS(status), 2) << file.filename();
  }
}

TEST(LintCorpus, EveryDefectIsCaughtByExactlyItsIntendedPass) {
  for (const auto& file : corpus_files()) {
    const std::string pass = intended_pass(file);
    std::ifstream in(file);
    ASSERT_TRUE(in.good()) << file;
    const VerifyResult r = verify_serialized(in);
    EXPECT_GT(r.count(Severity::kError), 0u)
        << file.filename() << ": the planted defect was not caught";
    for (const Diagnostic& d : r.diagnostics)
      if (d.severity == Severity::kError)
        EXPECT_EQ(d.pass, pass)
            << file.filename() << ": stray error from pass '" << d.pass
            << "': " << d.message;
  }
}

}  // namespace
}  // namespace gf::verify
